//! Workspace-level semantic rules over the [`crate::ast`] layer.
//!
//! Four rule families, all driven by facts joined across every library
//! file in the workspace:
//!
//! - **cast-truncation** — a narrowing `as` cast (`u64 as usize`,
//!   `usize as u32`, `u32 as u16`, …) applied to a value tainted by a
//!   decode seed. Seeds are calls that produce attacker-controlled
//!   integers (`from_le_bytes`, the `BitReader::try_read_*` family, the
//!   wire `Cursor` readers) plus the `LabelStore` table fields; taint
//!   propagates through `let` bindings and simple assignments inside one
//!   function body. `T::try_from` is the sanctioned narrowing and never
//!   fires.
//! - **swallowed-result** — `let _ = f(...)` or a `f(...).ok();`
//!   statement where `f` resolves to a *workspace* function or method
//!   returning `Result`. Std calls never fire because resolution only
//!   consults workspace signatures; macros never fire because the `!`
//!   breaks the call shape.
//! - **lock-order** — the workspace lock graph. An acquisition is
//!   `lock_unpoisoned(&self.field)` / `self.field.lock()` (and the
//!   method-selected form `lock_unpoisoned(self.pick(..))`); a lock is
//!   held to the end of its `let` statement's enclosing block, or to the
//!   end of the statement for a temporary guard. Locks acquired — directly
//!   or through calls resolved via `self`/typed-field receivers — while
//!   another lock is held become edges; any strongly-connected component
//!   is a deadlock risk and is reported once, at its earliest witness.
//! - **untrusted-length-alloc** — `Vec::with_capacity(n)` / `.reserve(n)`
//!   / `vec![x; n]` where `n` is tainted and no earlier `if`/`while`/
//!   `assert!` condition compares a tainted value (the cap-check shape).
//!
//! Everything here is deliberately intra-procedural except the two joins
//! that need the workspace: the `Result`-signature tables and the lock
//! graph. The approximations (taint per-body, one guard blesses later
//! allocations in the same body, receiver typing only through `self` and
//! typed fields) are chosen so the real decode paths lint precisely while
//! hot-path index arithmetic stays waiver-free.

use std::collections::{HashMap, HashSet};

use crate::ast::{FileAst, FnDef};
use crate::rules::{ident_at, matching_close, punct_at, Diagnostic};
use crate::tokenizer::{Tok, TokKind};

/// One library file, ready for semantic analysis.
#[derive(Debug)]
pub struct SemFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Significant tokens.
    pub toks: Vec<Tok>,
    /// Parsed items.
    pub ast: FileAst,
}

struct FnSeed {
    name: &'static str,
    /// Known output width in bits; `None` means "derive from a
    /// `u64::`-style path prefix" (defaulting to 64).
    width: Option<u16>,
    /// When set, the seed only applies in files whose path ends with this.
    file_suffix: Option<&'static str>,
}

/// Calls whose integer results are attacker-controlled.
const FN_SEEDS: &[FnSeed] = &[
    // Raw little/big-endian field decodes: the bytes came from outside.
    FnSeed {
        name: "from_le_bytes",
        width: None,
        file_suffix: None,
    },
    FnSeed {
        name: "from_be_bytes",
        width: None,
        file_suffix: None,
    },
    // Checked γ-decode readers over untrusted bit streams.
    FnSeed {
        name: "try_read_gamma",
        width: Some(64),
        file_suffix: None,
    },
    FnSeed {
        name: "try_read_gamma0",
        width: Some(64),
        file_suffix: None,
    },
    FnSeed {
        name: "try_read_unary",
        width: Some(64),
        file_suffix: None,
    },
    FnSeed {
        name: "try_read_bits",
        width: Some(64),
        file_suffix: None,
    },
    // HLNP wire cursor readers (names too generic to seed globally).
    FnSeed {
        name: "u8",
        width: Some(8),
        file_suffix: Some("net/src/wire.rs"),
    },
    FnSeed {
        name: "u16",
        width: Some(16),
        file_suffix: Some("net/src/wire.rs"),
    },
    FnSeed {
        name: "u32",
        width: Some(32),
        file_suffix: Some("net/src/wire.rs"),
    },
    FnSeed {
        name: "u64",
        width: Some(64),
        file_suffix: Some("net/src/wire.rs"),
    },
];

struct FieldSeed {
    field: &'static str,
    width: u16,
    file_suffix: &'static str,
}

/// Struct fields holding decoded-from-disk tables: tainted at every use,
/// so cross-function flows (parse → query) are covered without
/// inter-procedural dataflow.
const FIELD_SEEDS: &[FieldSeed] = &[
    FieldSeed {
        field: "offsets",
        width: 64,
        file_suffix: "server/src/store.rs",
    },
    FieldSeed {
        field: "bit_lens",
        width: 32,
        file_suffix: "server/src/store.rs",
    },
];

/// Width in bits a value of this primitive type may carry (as a source).
/// `usize` is 64: the value may have been produced on a 64-bit target.
fn src_width(ty: &str) -> Option<u16> {
    match ty {
        "u8" => Some(8),
        "u16" => Some(16),
        "u32" => Some(32),
        "u64" => Some(64),
        "usize" => Some(64),
        _ => None,
    }
}

/// Width a cast target is *guaranteed* to hold. `usize` is 32: the code
/// may run on a 32-bit target, so `u64 as usize` narrows while
/// `u32 as usize` does not.
fn tgt_floor(ty: &str) -> Option<u16> {
    match ty {
        "u8" => Some(8),
        "u16" => Some(16),
        "u32" => Some(32),
        "u64" => Some(64),
        "usize" => Some(32),
        _ => None,
    }
}

/// A lock's identity: `Owner.field` or `Owner.method()`.
type LockId = String;

/// Facts joined across the workspace before any rule runs.
struct Facts {
    /// Names of workspace functions *without* a self parameter that
    /// return `Result` (free and associated functions).
    result_free: HashSet<String>,
    /// Names of workspace methods (with self) that return `Result`.
    result_methods: HashSet<String>,
    /// `(owner struct, field)` pairs whose type mentions `Mutex`.
    mutex_fields: HashSet<(String, String)>,
    /// `(owner struct, field)` → head type ident, wrappers stripped.
    field_types: HashMap<(String, String), String>,
    /// `(self type, method name)` → global fn indices.
    methods_of: HashMap<(String, String), Vec<usize>>,
    /// free/associated fn name → global fn indices.
    free_of: HashMap<String, Vec<usize>>,
}

impl Facts {
    fn build(files: &[SemFile]) -> Facts {
        let mut f = Facts {
            result_free: HashSet::new(),
            result_methods: HashSet::new(),
            mutex_fields: HashSet::new(),
            field_types: HashMap::new(),
            methods_of: HashMap::new(),
            free_of: HashMap::new(),
        };
        let mut idx = 0usize;
        for file in files {
            for s in &file.ast.structs {
                for fld in &s.fields {
                    if fld.ty_idents.iter().any(|t| t == "Mutex") {
                        f.mutex_fields.insert((s.name.clone(), fld.name.clone()));
                    }
                    let head = fld
                        .ty_idents
                        .iter()
                        .find(|t| !matches!(t.as_str(), "Arc" | "Rc" | "Box" | "Option"))
                        .cloned();
                    if let Some(h) = head {
                        f.field_types.insert((s.name.clone(), fld.name.clone()), h);
                    }
                }
            }
            for fd in &file.ast.fns {
                if fd.returns_result {
                    if fd.has_self_param {
                        f.result_methods.insert(fd.name.clone());
                    } else {
                        f.result_free.insert(fd.name.clone());
                    }
                }
                if fd.has_self_param {
                    if let Some(ty) = &fd.self_ty {
                        f.methods_of
                            .entry((ty.clone(), fd.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                } else {
                    f.free_of.entry(fd.name.clone()).or_default().push(idx);
                }
                idx += 1;
            }
        }
        f
    }
}

/// One lock acquisition inside a function body.
struct Acquire {
    lock: LockId,
    tok: usize,
    line: u32,
    /// Token index past which the guard is certainly dead.
    scope_end: usize,
}

/// One call site that might transitively acquire locks.
struct CallSite {
    /// Resolved global fn indices (empty when unresolvable).
    targets: Vec<usize>,
    tok: usize,
    line: u32,
}

/// Per-function lock facts, indexed like the global fn list.
#[derive(Default)]
struct FnLockInfo {
    file: usize,
    acquires: Vec<Acquire>,
    calls: Vec<CallSite>,
}

impl FnLockInfo {
    fn new(file: usize) -> Self {
        FnLockInfo {
            file,
            acquires: Vec::new(),
            calls: Vec::new(),
        }
    }
}

/// Runs every semantic rule over the given library files.
pub fn semantic_scan(files: &[SemFile]) -> Vec<Diagnostic> {
    let facts = Facts::build(files);
    let mut out = Vec::new();
    let mut lock_infos: Vec<FnLockInfo> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for fd in &file.ast.fns {
            let mut info = FnLockInfo::new(fi);
            if fd.body.is_some() {
                let mut scan = BodyScan::new(file, fd, &facts);
                scan.run(&mut out, &mut info);
            }
            lock_infos.push(info);
        }
    }
    lock_order_rule(&lock_infos, files, &mut out);
    out
}

/// One pass over one function body: taint, casts, allocations, swallowed
/// results, and lock-acquisition extraction.
struct BodyScan<'a> {
    file: &'a SemFile,
    fd: &'a FnDef,
    facts: &'a Facts,
    /// Tainted local variables → width in bits.
    taint: HashMap<String, u16>,
    /// Token index of the most recent tainted-comparison guard.
    last_guard: Option<usize>,
}

impl<'a> BodyScan<'a> {
    fn new(file: &'a SemFile, fd: &'a FnDef, facts: &'a Facts) -> Self {
        BodyScan {
            file,
            fd,
            facts,
            taint: HashMap::new(),
            last_guard: None,
        }
    }

    fn toks(&self) -> &'a [Tok] {
        &self.file.toks
    }

    fn run(&mut self, out: &mut Vec<Diagnostic>, info: &mut FnLockInfo) {
        let Some((open, close)) = self.fd.body else {
            return;
        };
        let toks = self.toks();
        let mut i = open + 1;
        while i < close {
            match ident_at(toks, i) {
                Some("let") => {
                    let handled = self.on_let(i, close, out);
                    i = handled.max(i + 1);
                    continue;
                }
                Some("if") | Some("while") => self.on_condition(i, close),
                Some("as") => self.on_cast(i, out),
                Some("with_capacity") => self.on_alloc_call(i, close, out),
                Some("reserve") | Some("reserve_exact")
                    if punct_at(toks, i.wrapping_sub(1)) == Some('.') =>
                {
                    self.on_alloc_call(i, close, out);
                }
                Some("vec") => self.on_vec_macro(i, close, out),
                Some("ok") => self.on_ok_statement(i, open, close, out),
                Some("lock_unpoisoned") => self.on_lock_unpoisoned(i, open, close, info),
                Some("lock") => self.on_dot_lock(i, open, close, info),
                Some(name) if name.starts_with("assert") || name.starts_with("debug_assert") => {
                    self.on_assert_macro(i, close);
                }
                Some(_) => {
                    self.on_assign(i, open, close);
                    self.on_possible_call(i, info);
                }
                None => {}
            }
            i += 1;
        }
    }

    // ---- taint -----------------------------------------------------

    /// Handles a `let` statement (including `if let` / `while let` /
    /// `let _ =`). Returns the index to resume from.
    fn on_let(&mut self, i: usize, close: usize, out: &mut Vec<Diagnostic>) -> usize {
        let toks = self.toks();
        let in_condition = matches!(
            ident_at(toks, i.wrapping_sub(1)),
            Some("if") | Some("while")
        );

        // Find the `=` at depth 0, bounded by the statement.
        let mut eq = None;
        let mut colon = None;
        let mut depth = 0usize;
        let mut k = i + 1;
        while k < close {
            match punct_at(toks, k) {
                Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
                Some(')') | Some(']') | Some('}') | Some('>') => depth = depth.saturating_sub(1),
                Some(';') if depth == 0 => return k + 1, // `let x;`
                Some(':') if depth == 0 && colon.is_none() => {
                    // `::` is a path, a single `:` is the type annotation.
                    let part_of_path = punct_at(toks, k + 1) == Some(':')
                        || punct_at(toks, k.wrapping_sub(1)) == Some(':');
                    if !part_of_path {
                        colon = Some(k);
                    }
                }
                // An `=` that is not part of `==`, `<=`, `>=`, `!=`, `=>`.
                Some('=')
                    if depth == 0
                        && punct_at(toks, k + 1) != Some('=')
                        && punct_at(toks, k + 1) != Some('>')
                        && !matches!(
                            punct_at(toks, k.wrapping_sub(1)),
                            Some('=') | Some('<') | Some('>') | Some('!')
                        ) =>
                {
                    eq = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else { return i + 1 };

        // Expression span: to the `;` at depth 0 (or `{` for `if let`).
        let mut depth = 0usize;
        let mut end = eq + 1;
        while end < close {
            match punct_at(toks, end) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth = depth.saturating_sub(1),
                Some('{') if in_condition && depth == 0 => break,
                Some('{') => depth += 1,
                Some('}') => depth = depth.saturating_sub(1),
                Some(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }

        // `let _ = EXPR;` — the swallowed-result shape.
        if ident_at(toks, i + 1) == Some("_") && eq == i + 2 {
            self.check_swallow(eq + 1, end, toks[i].line, out);
            return i + 3;
        }

        // Bindings: idents between `let` and the annotation/`=`,
        // excluding keywords and Uppercase pattern constructors.
        let bind_end = colon.unwrap_or(eq);
        let mut bindings = Vec::new();
        for b in i + 1..bind_end {
            if let Some(name) = ident_at(toks, b) {
                if matches!(name, "mut" | "ref" | "_") {
                    continue;
                }
                if name.starts_with(char::is_uppercase) {
                    continue;
                }
                bindings.push(name.to_string());
            }
        }

        // Width hint from the annotation (`let k: u32 = …`).
        let anno_width =
            colon.and_then(|c| (c + 1..eq).find_map(|t| ident_at(toks, t).and_then(src_width)));

        let w = self.expr_taint(eq + 1, end, anno_width);
        for b in bindings {
            match w {
                Some((width, _)) => {
                    self.taint.insert(b, width);
                }
                None => {
                    self.taint.remove(&b);
                }
            }
        }
        // Do not skip the expression: casts/allocs inside it must still
        // be scanned by the main loop.
        i + 1
    }

    /// `x = expr;` at statement start re-taints (or clears) `x`.
    fn on_assign(&mut self, i: usize, open: usize, close: usize) {
        let toks = self.toks();
        if punct_at(toks, i + 1) != Some('=') || punct_at(toks, i + 2) == Some('=') {
            return;
        }
        let at_start = i == open + 1
            || matches!(
                punct_at(toks, i.wrapping_sub(1)),
                Some(';') | Some('{') | Some('}')
            );
        if !at_start {
            return;
        }
        let name = match ident_at(toks, i) {
            Some(n) => n.to_string(),
            None => return,
        };
        let end = statement_end(toks, i, close);
        let hi = if end > 0 && punct_at(toks, end - 1) == Some(';') {
            end - 1
        } else {
            end
        };
        match self.expr_taint(i + 2, hi, None) {
            Some((w, _)) => {
                self.taint.insert(name, w);
            }
            None => {
                self.taint.remove(&name);
            }
        }
    }

    /// Taint of an expression span: max width over tainted atoms, with
    /// `try_from` / trailing-cast width clamping and `.min(`/`.clamp(`
    /// laundering. Returns the width and the name of the atom behind it.
    fn expr_taint(&self, lo: usize, hi: usize, anno_width: Option<u16>) -> Option<(u16, String)> {
        let toks = self.toks();
        // `.min(` / `.clamp(` bound the value: launder.
        for t in lo..hi {
            if matches!(ident_at(toks, t), Some("min") | Some("clamp"))
                && punct_at(toks, t.wrapping_sub(1)) == Some('.')
                && punct_at(toks, t + 1) == Some('(')
            {
                return None;
            }
        }
        let (mut width, name) = self.span_atoms(lo, hi)?;
        // `P::try_from(x)` clamps to P's width (checked conversion).
        for t in lo..hi {
            if ident_at(toks, t) == Some("try_from")
                && punct_at(toks, t.wrapping_sub(1)) == Some(':')
            {
                if let Some(w) = ident_at(toks, t.wrapping_sub(3)).and_then(src_width) {
                    width = width.min(w);
                }
            }
            if ident_at(toks, t) == Some("try_into") {
                if let Some(w) = anno_width {
                    width = width.min(w);
                }
            }
        }
        // Trailing `… as T` clamps to T's source width.
        if hi >= 2 && ident_at(toks, hi - 2) == Some("as") {
            if let Some(w) = ident_at(toks, hi - 1).and_then(src_width) {
                width = width.min(w);
            }
        }
        Some((width, name))
    }

    /// Widest tainted atom (variable, seed call, seed field) in a span.
    fn span_atoms(&self, lo: usize, hi: usize) -> Option<(u16, String)> {
        let toks = self.toks();
        let mut best: Option<(u16, String)> = None;
        let mut consider = |w: u16, name: &str| {
            if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                best = Some((w, name.to_string()));
            }
        };
        for t in lo..hi.min(toks.len()) {
            let Some(name) = ident_at(toks, t) else {
                continue;
            };
            let after_dot = punct_at(toks, t.wrapping_sub(1)) == Some('.');
            let is_call = punct_at(toks, t + 1) == Some('(');
            if is_call {
                if let Some(w) = self.seed_call_width(t) {
                    consider(w, name);
                }
                continue;
            }
            if after_dot {
                // Field access: only the field seeds taint these.
                for fs in FIELD_SEEDS {
                    if fs.field == name && self.file.rel.ends_with(fs.file_suffix) {
                        consider(fs.width, name);
                    }
                }
                continue;
            }
            if let Some(&w) = self.taint.get(name) {
                consider(w, name);
            }
        }
        best
    }

    /// If the call at token `t` is a taint seed, its output width.
    fn seed_call_width(&self, t: usize) -> Option<u16> {
        let toks = self.toks();
        let name = ident_at(toks, t)?;
        for s in FN_SEEDS {
            if s.name != name {
                continue;
            }
            if let Some(suffix) = s.file_suffix {
                if !self.file.rel.ends_with(suffix) {
                    continue;
                }
            }
            return Some(s.width.unwrap_or_else(|| {
                // `u32::from_le_bytes` → 32; bare call defaults to 64.
                if punct_at(toks, t.wrapping_sub(1)) == Some(':') {
                    ident_at(toks, t.wrapping_sub(3))
                        .and_then(src_width)
                        .unwrap_or(64)
                } else {
                    64
                }
            }));
        }
        None
    }

    // ---- cast-truncation -------------------------------------------

    fn on_cast(&mut self, i: usize, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        let Some(target) = ident_at(toks, i + 1) else {
            return;
        };
        let Some(floor) = tgt_floor(target) else {
            return;
        };
        let start = cast_source_start(toks, i);
        let Some((w, root)) = self.span_atoms(start, i) else {
            return;
        };
        if w > floor {
            out.push(Diagnostic {
                rule: "cast-truncation",
                file: self.file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "narrowing `as {target}` on untrusted decoded value `{root}` \
                     (~{w}-bit); convert with {target}::try_from and a typed error"
                ),
            });
        }
    }

    // ---- untrusted-length-alloc ------------------------------------

    /// `with_capacity(ARG)` / `.reserve(ARG)` at token `i`.
    fn on_alloc_call(&mut self, i: usize, close: usize, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        if punct_at(toks, i + 1) != Some('(') {
            return;
        }
        let Some(end) = matching_close(toks, i + 1, '(', ')') else {
            return;
        };
        self.check_alloc(i, i + 2, end.min(close), out);
    }

    /// `vec![EXPR; ARG]` at token `i`.
    fn on_vec_macro(&mut self, i: usize, close: usize, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        if punct_at(toks, i + 1) != Some('!') || punct_at(toks, i + 2) != Some('[') {
            return;
        }
        let Some(end) = matching_close(toks, i + 2, '[', ']') else {
            return;
        };
        let mut depth = 0usize;
        for k in i + 3..end.min(close) {
            match punct_at(toks, k) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth = depth.saturating_sub(1),
                Some(';') if depth == 0 => {
                    self.check_alloc(i, k + 1, end.min(close), out);
                    return;
                }
                _ => {}
            }
        }
    }

    fn check_alloc(&mut self, site: usize, lo: usize, hi: usize, out: &mut Vec<Diagnostic>) {
        let Some((_, root)) = self.span_atoms(lo, hi) else {
            return;
        };
        if self.last_guard.is_some_and(|g| g < site) {
            return;
        }
        let toks = self.toks();
        out.push(Diagnostic {
            rule: "untrusted-length-alloc",
            file: self.file.rel.clone(),
            line: toks[site].line,
            message: format!(
                "allocation sized by untrusted decoded value `{root}` with no \
                 preceding cap check"
            ),
        });
    }

    /// `if`/`while` conditions: a comparison mentioning a tainted value
    /// counts as a cap check for everything after it in this body.
    fn on_condition(&mut self, i: usize, close: usize) {
        let toks = self.toks();
        let mut depth = 0usize;
        let mut end = i + 1;
        while end < close {
            match punct_at(toks, end) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth = depth.saturating_sub(1),
                Some('{') if depth == 0 => break,
                Some('{') => depth += 1,
                Some('}') => depth = depth.saturating_sub(1),
                _ => {}
            }
            end += 1;
        }
        self.record_guard(i + 1, end);
    }

    /// `assert!(…)` / `debug_assert!(…)` bodies count like conditions.
    fn on_assert_macro(&mut self, i: usize, close: usize) {
        let toks = self.toks();
        if punct_at(toks, i + 1) != Some('!') || punct_at(toks, i + 2) != Some('(') {
            return;
        }
        let Some(end) = matching_close(toks, i + 2, '(', ')') else {
            return;
        };
        self.record_guard(i + 3, end.min(close));
    }

    fn record_guard(&mut self, lo: usize, hi: usize) {
        let toks = self.toks();
        let has_cmp = (lo..hi).any(|k| {
            matches!(punct_at(toks, k), Some('<') | Some('>'))
                && !matches!(
                    punct_at(toks, k.wrapping_sub(1)),
                    Some('-') | Some('=') | Some(':') | Some('<') | Some('>')
                )
                && punct_at(toks, k + 1) != Some('>')
        });
        if has_cmp && self.span_atoms(lo, hi).is_some() {
            self.last_guard = Some(hi);
        }
    }

    // ---- swallowed-result ------------------------------------------

    /// The expression of a `let _ = …;` statement.
    fn check_swallow(&self, lo: usize, hi: usize, line: u32, out: &mut Vec<Diagnostic>) {
        if let Some(callee) = self.discarded_result_callee(lo, hi) {
            out.push(Diagnostic {
                rule: "swallowed-result",
                file: self.file.rel.clone(),
                line,
                message: format!(
                    "Result returned by `{callee}` is silently discarded; \
                     handle or propagate it (or waive with a reason)"
                ),
            });
        }
    }

    /// `recv().ok();` as a bare statement.
    fn on_ok_statement(&self, i: usize, open: usize, close: usize, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        if punct_at(toks, i.wrapping_sub(1)) != Some('.')
            || punct_at(toks, i + 1) != Some('(')
            || punct_at(toks, i + 2) != Some(')')
            || punct_at(toks, i + 3) != Some(';')
        {
            return;
        }
        // Statement must not be a `let` (those go through check_swallow).
        let mut s = i;
        while s > open {
            if matches!(punct_at(toks, s - 1), Some(';') | Some('{') | Some('}')) {
                break;
            }
            s -= 1;
        }
        if ident_at(toks, s) == Some("let") {
            return;
        }
        let _ = close;
        if let Some(callee) = self.result_callee_ending_at(i - 2) {
            out.push(Diagnostic {
                rule: "swallowed-result",
                file: self.file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "Result returned by `{callee}` is discarded via .ok(); \
                     handle or propagate it (or waive with a reason)"
                ),
            });
        }
    }

    /// The workspace `Result`-returning callee whose value the span
    /// `[lo, hi)` discards, if any.
    fn discarded_result_callee(&self, lo: usize, hi: usize) -> Option<String> {
        let toks = self.toks();
        let mut end = hi;
        while end > lo && punct_at(toks, end - 1) == Some('?') {
            end -= 1;
        }
        if end <= lo {
            return None;
        }
        self.result_callee_ending_at(end - 1)
    }

    /// Resolves the call whose closing `)` sits at `last`, against the
    /// workspace `Result` tables. `.ok()` tails recurse to the receiver.
    fn result_callee_ending_at(&self, last: usize) -> Option<String> {
        let toks = self.toks();
        if punct_at(toks, last) != Some(')') {
            return None;
        }
        let open = matching_open(toks, last, '(', ')')?;
        let callee = ident_at(toks, open.checked_sub(1)?)?;
        let before = open.checked_sub(2);
        let is_method = before.is_some_and(|b| punct_at(toks, b) == Some('.'));
        if callee == "ok" && is_method {
            // `f(...).ok()` — the discarded Result is the receiver's.
            return open
                .checked_sub(3)
                .and_then(|r| self.result_callee_ending_at(r));
        }
        let known = if is_method {
            self.facts.result_methods.contains(callee)
        } else {
            // Free or path call (`send(..)`, `Type::parse(..)`).
            self.facts.result_free.contains(callee)
        };
        known.then(|| callee.to_string())
    }

    // ---- lock-order fact extraction --------------------------------

    /// `lock_unpoisoned(&self.field)` / `lock_unpoisoned(self.pick(..))`.
    fn on_lock_unpoisoned(&self, i: usize, open: usize, close: usize, info: &mut FnLockInfo) {
        let toks = self.toks();
        if punct_at(toks, i + 1) != Some('(') {
            return;
        }
        let Some(end) = matching_close(toks, i + 1, '(', ')') else {
            return;
        };
        let mut a = i + 2;
        if punct_at(toks, a) == Some('&') {
            a += 1;
        }
        let Some(lock) = self.lock_id_of_path(a, end) else {
            return;
        };
        self.push_acquire(lock, i, open, close, info);
    }

    /// `self.field.lock()` (receiver walked back from the `.`).
    fn on_dot_lock(&self, i: usize, open: usize, close: usize, info: &mut FnLockInfo) {
        let toks = self.toks();
        if punct_at(toks, i.wrapping_sub(1)) != Some('.') || punct_at(toks, i + 1) != Some('(') {
            return;
        }
        // Receiver: `self . f1 [. f2]` directly before the `.lock`.
        let mut fields = Vec::new();
        let mut k = i - 1;
        loop {
            let Some(prev) = k.checked_sub(1) else { return };
            let Some(name) = ident_at(toks, prev) else {
                return;
            };
            if name == "self" {
                break;
            }
            fields.push(name.to_string());
            let Some(dot) = prev.checked_sub(1) else {
                return;
            };
            if punct_at(toks, dot) != Some('.') {
                return;
            }
            k = dot;
        }
        fields.reverse();
        let Some(lock) = self.field_chain_lock_id(&fields) else {
            return;
        };
        self.push_acquire(lock, i, open, close, info);
    }

    /// Lock id for an argument path `self . X …` in `[a, end)`.
    fn lock_id_of_path(&self, a: usize, end: usize) -> Option<LockId> {
        let toks = self.toks();
        if ident_at(toks, a) != Some("self") || punct_at(toks, a + 1) != Some('.') {
            return None;
        }
        let name = ident_at(toks, a + 2)?;
        let owner = self.fd.self_ty.clone().unwrap_or_default();
        if punct_at(toks, a + 3) == Some('(') {
            // Method-selected lock (`self.shard(key)`).
            return Some(format!("{owner}.{name}()"));
        }
        if a + 3 < end && punct_at(toks, a + 3) == Some('.') {
            // `self.a.b` chain.
            let inner = ident_at(toks, a + 4)?;
            return self.field_chain_lock_id(&[name.to_string(), inner.to_string()]);
        }
        self.field_chain_lock_id(std::slice::from_ref(&name.to_string()))
    }

    /// Lock id for `self.<f1>.<f2>…`: the final field must be a known
    /// `Mutex` field; its owner is resolved through typed fields where
    /// possible.
    fn field_chain_lock_id(&self, fields: &[String]) -> Option<LockId> {
        let last = fields.last()?;
        let mut owner = self.fd.self_ty.clone().unwrap_or_default();
        for f in &fields[..fields.len() - 1] {
            owner = self
                .facts
                .field_types
                .get(&(owner.clone(), f.clone()))
                .cloned()
                .unwrap_or_default();
        }
        if self
            .facts
            .mutex_fields
            .contains(&(owner.clone(), last.clone()))
        {
            return Some(format!("{owner}.{last}"));
        }
        // Fall back to any struct with a mutex field of this name.
        self.facts
            .mutex_fields
            .iter()
            .find(|(_, f)| f == last)
            .map(|(o, f)| format!("{o}.{f}"))
    }

    fn push_acquire(
        &self,
        lock: LockId,
        i: usize,
        open: usize,
        close: usize,
        info: &mut FnLockInfo,
    ) {
        let toks = self.toks();
        let bound = {
            let mut s = i;
            while s > open && !matches!(punct_at(toks, s - 1), Some(';') | Some('{') | Some('}')) {
                s -= 1;
            }
            // A `*` before the acquisition means the guard is a deref'd
            // temporary (`let x = *self.a.lock()…;`), not a held binding.
            ident_at(toks, s) == Some("let") && !(s..i).any(|k| punct_at(toks, k) == Some('*'))
        };
        let scope_end = if bound {
            enclosing_block_close(toks, open, close, i)
        } else {
            statement_end(toks, i, close)
        };
        info.acquires.push(Acquire {
            lock,
            tok: i,
            line: toks[i].line,
            scope_end,
        });
    }

    /// Records resolvable calls (for transitive lock sets).
    fn on_possible_call(&self, i: usize, info: &mut FnLockInfo) {
        let toks = self.toks();
        let name = match ident_at(toks, i) {
            Some(n) => n,
            None => return,
        };
        if punct_at(toks, i + 1) != Some('(') {
            return;
        }
        if matches!(
            name,
            "if" | "while"
                | "for"
                | "match"
                | "return"
                | "loop"
                | "move"
                | "fn"
                | "lock"
                | "lock_unpoisoned"
        ) {
            return;
        }
        let is_method = punct_at(toks, i.wrapping_sub(1)) == Some('.');
        let targets: Vec<usize> = if is_method {
            let recv = i.checked_sub(2);
            let self_ty = self.fd.self_ty.as_deref().unwrap_or("");
            match recv.and_then(|r| ident_at(toks, r)) {
                Some("self") => self
                    .facts
                    .methods_of
                    .get(&(self_ty.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default(),
                Some(field)
                    if recv.is_some_and(|r| {
                        r >= 2
                            && punct_at(toks, r - 1) == Some('.')
                            && ident_at(toks, r - 2) == Some("self")
                    }) =>
                {
                    match self
                        .facts
                        .field_types
                        .get(&(self_ty.to_string(), field.to_string()))
                    {
                        Some(ty) => self
                            .facts
                            .methods_of
                            .get(&(ty.clone(), name.to_string()))
                            .cloned()
                            .unwrap_or_default(),
                        None => Vec::new(),
                    }
                }
                _ => Vec::new(),
            }
        } else {
            self.facts.free_of.get(name).cloned().unwrap_or_default()
        };
        if !targets.is_empty() {
            info.calls.push(CallSite {
                targets,
                tok: i,
                line: toks[i].line,
            });
        }
    }
}

/// Leftmost token of the postfix chain that is the source of the cast
/// whose `as` keyword sits at `as_idx`.
fn cast_source_start(toks: &[Tok], as_idx: usize) -> usize {
    let mut j = match as_idx.checked_sub(1) {
        Some(j) => j,
        None => return as_idx,
    };
    let mut start = as_idx;
    loop {
        match &toks.get(j).map(|t| &t.kind) {
            Some(TokKind::Punct('?')) | Some(TokKind::Punct('.')) => {}
            Some(TokKind::Punct(')')) => match matching_open(toks, j, '(', ')') {
                Some(o) => {
                    start = o;
                    j = o;
                }
                None => return start,
            },
            Some(TokKind::Punct(']')) => match matching_open(toks, j, '[', ']') {
                Some(o) => {
                    start = o;
                    j = o;
                }
                None => return start,
            },
            Some(TokKind::Punct(':')) => {
                // Only `::` path separators continue the chain.
                if !(j >= 1 && punct_at(toks, j - 1) == Some(':'))
                    && punct_at(toks, j + 1) != Some(':')
                {
                    return start;
                }
            }
            Some(TokKind::Ident(_)) | Some(TokKind::Num) => {
                start = j;
                // Continue only through `.`/`::` connectors.
                match j.checked_sub(1).and_then(|p| punct_at(toks, p)) {
                    Some('.') | Some(':') => {}
                    _ => return start,
                }
            }
            _ => return start,
        }
        match j.checked_sub(1) {
            Some(n) => j = n,
            None => return start,
        }
    }
}

/// Index of the `open` punct matching the `close` punct at `end`.
fn matching_open(toks: &[Tok], end: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = end;
    loop {
        match punct_at(toks, k) {
            Some(c) if c == close => depth += 1,
            Some(c) if c == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
}

/// End (exclusive) of the statement containing token `i`: the next `;`
/// with brackets balanced, bounded by the body's closing brace.
fn statement_end(toks: &[Tok], i: usize, close: usize) -> usize {
    let mut depth = 0isize;
    let mut k = i;
    while k < close {
        match punct_at(toks, k) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            Some(';') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    close
}

/// Closing-brace index of the innermost block containing token `i`.
fn enclosing_block_close(toks: &[Tok], open: usize, close: usize, i: usize) -> usize {
    let mut stack = vec![close];
    let mut k = open + 1;
    while k < i {
        match punct_at(toks, k) {
            Some('{') => {
                if let Some(c) = matching_close(toks, k, '{', '}') {
                    stack.push(c);
                }
            }
            Some('}') if stack.len() > 1 && stack.last().copied() == Some(k) => {
                stack.pop();
            }
            _ => {}
        }
        k += 1;
    }
    // Drop any block that already closed before `i`.
    while stack.len() > 1 && stack.last().copied().is_some_and(|c| c < i) {
        stack.pop();
    }
    stack.last().copied().unwrap_or(close)
}

/// Builds the workspace lock graph and reports its cycles.
fn lock_order_rule(infos: &[FnLockInfo], files: &[SemFile], out: &mut Vec<Diagnostic>) {
    // Transitive lock sets per function (fixpoint over the call graph).
    let n = infos.len();
    let mut sets: Vec<HashSet<LockId>> = infos
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect())
        .collect();
    for _ in 0..n.min(32) {
        let mut changed = false;
        for (f, info) in infos.iter().enumerate() {
            for c in &info.calls {
                for &t in &c.targets {
                    if t == f {
                        continue;
                    }
                    let add: Vec<LockId> = sets[t].difference(&sets[f]).cloned().collect();
                    if !add.is_empty() {
                        sets[f].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: lock A (held) → lock B (acquired while A held), with the
    // earliest witness per edge.
    let mut edges: HashMap<(LockId, LockId), (String, u32)> = HashMap::new();
    let mut witness = |a: &LockId, b: &LockId, file: &str, line: u32| {
        if a == b {
            return; // re-acquisition of the same id is usually a shard
        }
        let key = (a.clone(), b.clone());
        let w = (file.to_string(), line);
        match edges.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if w < *e.get() {
                    *e.get_mut() = w;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(w);
            }
        }
    };
    for info in infos {
        let rel = &files[info.file].rel;
        for a in &info.acquires {
            for b in &info.acquires {
                if b.tok > a.tok && b.tok < a.scope_end {
                    witness(&a.lock, &b.lock, rel, b.line);
                }
            }
            for c in &info.calls {
                if c.tok > a.tok && c.tok < a.scope_end {
                    for &t in &c.targets {
                        for l in &sets[t] {
                            witness(&a.lock, l, rel, c.line);
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: an edge is cyclic iff its head reaches its tail.
    let mut succ: HashMap<&LockId, Vec<&LockId>> = HashMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a).or_default().push(b);
    }
    let reaches = |from: &LockId, to: &LockId| -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen.insert(x.clone()) {
                if let Some(next) = succ.get(x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    type Edge<'a> = (&'a (LockId, LockId), &'a (String, u32));
    let cyclic: Vec<Edge> = edges.iter().filter(|((a, b), _)| reaches(b, a)).collect();
    if cyclic.is_empty() {
        return;
    }

    // Group mutually-reachable locks into components; one diagnostic per
    // component at its earliest witness.
    let mut locks: Vec<&LockId> = cyclic.iter().flat_map(|((a, b), _)| [a, b]).collect();
    locks.sort();
    locks.dedup();
    let mut assigned: HashSet<LockId> = HashSet::new();
    let mut diags = Vec::new();
    for &l in &locks {
        if assigned.contains(l) {
            continue;
        }
        let mut comp: Vec<&LockId> = locks
            .iter()
            .copied()
            .filter(|&m| reaches(l, m) && reaches(m, l))
            .collect();
        comp.sort();
        for m in &comp {
            assigned.insert((*m).clone());
        }
        let w = cyclic
            .iter()
            .filter(|((a, b), _)| comp.contains(&a) && comp.contains(&b))
            .map(|(_, w)| (*w).clone())
            .min();
        if let Some((file, line)) = w {
            let names: Vec<String> = comp.iter().map(|s| s.to_string()).collect();
            diags.push(Diagnostic {
                rule: "lock-order",
                file,
                line,
                message: format!(
                    "locks {{{}}} are acquired in inconsistent orders; \
                     establish one global acquisition order",
                    names.join(", ")
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.extend(diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::tokenizer::tokenize;

    fn scan_named(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let sem: Vec<SemFile> = files
            .iter()
            .map(|(rel, src)| {
                let t = tokenize(src);
                let ast = parse_file(&t);
                SemFile {
                    rel: rel.to_string(),
                    toks: t.tokens,
                    ast,
                }
            })
            .collect();
        semantic_scan(&sem)
    }

    fn scan(src: &str) -> Vec<Diagnostic> {
        scan_named(&[("src/lib.rs", src)])
    }

    #[test]
    fn narrowing_cast_on_decoded_value_fires() {
        let d = scan("fn f(b: [u8; 8]) -> u32 { let n = u64::from_le_bytes(b); n as u32 }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "cast-truncation");
        assert!(d[0].message.contains("`n`"));
    }

    #[test]
    fn widening_cast_is_clean() {
        assert!(
            scan("fn f(b: [u8; 4]) -> usize { let n = u32::from_le_bytes(b); n as usize }")
                .is_empty()
        );
        assert!(
            scan("fn f(b: [u8; 4]) -> u64 { let n = u32::from_le_bytes(b); n as u64 }").is_empty()
        );
    }

    #[test]
    fn u64_to_usize_is_narrowing() {
        let d = scan("fn f(b: [u8; 8]) -> usize { u64::from_le_bytes(b) as usize }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "cast-truncation");
    }

    #[test]
    fn untainted_casts_are_ignored() {
        assert!(scan("fn f(x: u64) -> u32 { x as u32 }").is_empty());
        assert!(scan("fn f(v: &[u8]) -> u32 { v.len() as u32 }").is_empty());
    }

    #[test]
    fn try_from_launders_the_width() {
        let src = "fn f(b: [u8; 8]) -> Option<u32> { let n = u64::from_le_bytes(b); let k = u32::try_from(n).ok()?; Some(k) }";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn field_seed_taints_store_table_reads() {
        let src = "struct LabelStore { offsets: Vec<u64> }\nimpl LabelStore {\n fn at(&self, i: usize) -> usize { self.offsets[i] as usize }\n}";
        let d = scan_named(&[("crates/server/src/store.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "cast-truncation");
        assert_eq!(d[0].line, 3);
        // Same code outside the seeded file is clean.
        assert!(scan_named(&[("crates/graph/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn swallowed_result_on_workspace_fn() {
        let src = "fn fallible() -> Result<(), String> { Ok(()) }\nfn g() { let _ = fallible(); }";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "swallowed-result");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("`fallible`"));
    }

    #[test]
    fn ok_statement_fires_and_macros_do_not() {
        let src = "fn fallible() -> Result<(), String> { Ok(()) }\nfn g() {\n fallible().ok();\n let _ = write!(x, \"y\");\n}";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn std_calls_and_non_result_fns_are_clean() {
        let src = "fn pure() -> u32 { 1 }\nfn g(h: std::thread::JoinHandle<()>) { let _ = h.join(); let _ = pure(); }";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn result_discarded_through_let_underscore_with_question() {
        // `let _ = f()?;` still uses the value; but a plain discard of a
        // cross-file workspace fn fires.
        let d = scan_named(&[
            (
                "src/a.rs",
                "pub fn send(x: u32) -> Result<(), E> { Ok(()) }",
            ),
            ("src/b.rs", "fn g() { let _ = send(1); }"),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "src/b.rs");
    }

    #[test]
    fn tainted_alloc_without_guard_fires() {
        let src = "fn f(b: [u8; 4]) -> Vec<u32> { let n = u32::from_le_bytes(b); let mut v = Vec::with_capacity(n as usize); v }";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "untrusted-length-alloc");
    }

    #[test]
    fn guarded_alloc_is_clean() {
        let src = "fn f(b: [u8; 4], cap: usize) -> Vec<u32> {\n let n = u32::from_le_bytes(b);\n if n as usize > cap { return Vec::new(); }\n let mut v = Vec::with_capacity(n as usize); v }";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn tainted_reserve_and_vec_macro_fire() {
        let src = "fn f(b: [u8; 4], v: &mut Vec<u8>) { let n = u32::from_le_bytes(b); v.reserve(n as usize); }";
        assert_eq!(scan(src).len(), 1);
        let src2 =
            "fn f(b: [u8; 4]) -> Vec<u8> { let n = u32::from_le_bytes(b); vec![0u8; n as usize] }";
        assert_eq!(scan(src2).len(), 1);
    }

    #[test]
    fn untainted_alloc_is_ignored() {
        assert!(scan("fn f(k: usize) -> Vec<u8> { Vec::with_capacity(k) }").is_empty());
    }

    #[test]
    fn min_launders_alloc_taint() {
        let src = "fn f(b: [u8; 4]) -> Vec<u8> { let n = (u32::from_le_bytes(b) as usize).min(1024); Vec::with_capacity(n) }";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn lock_order_cycle_is_reported_once_at_earliest_witness() {
        let src = "use std::sync::Mutex;\npub struct Pair { a: Mutex<u32>, b: Mutex<u32> }\nimpl Pair {\n pub fn ab(&self) -> u32 {\n  let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  let h = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  *g + *h\n }\n pub fn ba(&self) -> u32 {\n  let g = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  let h = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  *g + *h\n }\n}";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-order");
        assert_eq!(d[0].line, 6, "earliest second-lock witness");
        assert!(d[0].message.contains("Pair.a"));
        assert!(d[0].message.contains("Pair.b"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "use std::sync::Mutex;\npub struct Pair { a: Mutex<u32>, b: Mutex<u32> }\nimpl Pair {\n pub fn ab(&self) -> u32 { let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let h = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner); *g + *h }\n pub fn ab2(&self) -> u32 { let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let h = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner); *g - *h }\n}";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn cross_method_lock_cycle_through_self_calls() {
        let src = "use std::sync::Mutex;\npub struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n fn take_a(&self) -> u32 { let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); *g }\n pub fn outer(&self) {\n  let g = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  let _x = self.take_a();\n }\n pub fn other(&self) {\n  let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  let h = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n  *g + *h;\n }\n}";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-order");
    }

    #[test]
    fn temporary_guard_does_not_hold_across_statements() {
        // A temporary guard dies at the end of its statement, so the
        // second acquisition is not nested and no cycle exists.
        let src = "use std::sync::Mutex;\npub struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n pub fn ab(&self) -> u32 { let x = *self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let y = *self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner); x + y }\n pub fn ba(&self) -> u32 { let x = *self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let y = *self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner); x + y }\n}";
        let d = scan(src);
        assert!(d.is_empty(), "{d:?}");
    }
}
