#![deny(unsafe_code)] // lint:allow(no-unsafe-attr): FFI shim; unsafe confined to the ffi module
//! A thin `poll(2)` shim, the only foreign call in the workspace.
//!
//! The event-driven `hl-net` server needs readiness notification over
//! many nonblocking sockets, and the workspace builds offline with zero
//! external crates — no `libc`, no `mio`. `poll(2)` is in POSIX, its ABI
//! is three machine words per descriptor, and every libc we link against
//! exports it, so this crate declares exactly that one symbol and wraps
//! it in a safe, `io::Result`-shaped API:
//!
//! - [`PollFd`] — `#[repr(C)]` mirror of `struct pollfd`.
//! - [`poll()`] — waits for readiness on a set of descriptors with a
//!   millisecond timeout, retrying `EINTR` internally.
//!
//! Everything else in the workspace stays `#![forbid(unsafe_code)]`; the
//! crate-root attribute here is `deny` (not `forbid`) solely so the
//! `ffi` module can opt back in for the single foreign call.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// There is data to read (or, for a listener, a connection to accept).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (always polled, even if unrequested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, even if unrequested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor was not open (always polled, even if unrequested).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result — the ABI mirror
/// of POSIX `struct pollfd` (three machine words: `int fd; short events;
/// short revents;`), which is what makes passing `&mut [PollFd]`
/// straight to the syscall sound.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// The descriptor to watch (a negative fd is legally ignored by
    /// `poll`, which callers can use to keep slot indexes stable).
    pub fd: i32,
    /// Requested events: a bitwise OR of [`POLLIN`] / [`POLLOUT`].
    pub events: i16,
    /// Returned events, filled by [`poll()`]; includes [`POLLERR`],
    /// [`POLLHUP`] and [`POLLNVAL`] even when not requested.
    pub revents: i16,
}

impl PollFd {
    /// A watch on `fd` for `events`, with `revents` cleared.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` when a read (or accept) would make progress: data, hangup
    /// or error — all three need a read attempt to observe the cause.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// `true` when a write would make progress (or fail fast on error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// `true` when the descriptor itself is broken ([`POLLNVAL`]).
    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod ffi {
    //! The one unsafe block in the workspace: `poll(2)` by its POSIX
    //! signature. Soundness rests on [`super::PollFd`] being
    //! `#[repr(C)]`-identical to `struct pollfd` and on the slice's
    //! length being passed as its element count.

    use super::PollFd;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Direct syscall wrapper; returns the raw `poll` result (`-1` means
    /// consult `errno` via [`std::io::Error::last_os_error`]).
    pub fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        let nfds = std::ffi::c_ulong::try_from(fds.len()).unwrap_or(std::ffi::c_ulong::MAX);
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd mirrors; nfds is its exact length; the
        // kernel writes only within `fds[..nfds]`.
        unsafe { poll(fds.as_mut_ptr(), nfds, timeout_ms) }
    }
}

/// Waits until at least one descriptor in `fds` is ready, the timeout
/// elapses (`Ok(0)`), or a signal interrupts — `EINTR` is retried
/// internally with the same timeout. `None` blocks indefinitely.
///
/// Returns the number of descriptors with nonzero `revents`.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms = match timeout {
        None => -1i32,
        Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
    };
    loop {
        let rc = ffi::poll_raw(fds, timeout_ms);
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        return Ok(usize::try_from(rc).unwrap_or(0));
    }
}

/// Non-unix stub so the crate still type-checks off-platform; the server
/// that calls it is itself unix-only.
#[cfg(not(unix))]
pub fn poll(_fds: &mut [PollFd], _timeout: Option<Duration>) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "poll(2) requires a unix platform",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_with_nothing_ready_returns_zero() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn written_byte_makes_the_read_side_ready() {
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        b.write_all(&[7]).expect("write");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(1))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].invalid());
    }

    #[test]
    fn hangup_reports_readable_so_the_read_observes_eof() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(1))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "POLLHUP must count as readable");
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(1))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn negative_fd_is_ignored_not_an_error() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(5))).expect("poll");
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn empty_set_is_a_pure_sleep() {
        let started = std::time::Instant::now();
        let n = poll(&mut [], Some(Duration::from_millis(15))).expect("poll");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(10));
    }
}
