//! The sharded serving tier, end to end: partition a labeling four
//! ways, serve each shard from its own in-process HLNP daemon, and
//! verify the router answers *every* pair — owned and cross-shard —
//! identically to BFS ground truth on the original graph.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::FlatLabeling;
use hl_graph::{bfs, generators, Graph, NodeId};
use hl_net::{ClientConfig, NetServer, ServerConfig, StopHandle};
use hl_server::QueryEngine;
use hl_shard::{partition, shard_of, ShardError, ShardRouter};

struct Fleet {
    addrs: Vec<String>,
    stops: Vec<StopHandle>,
    threads: Vec<JoinHandle<()>>,
}

impl Fleet {
    /// One in-process daemon per shard labeling, each on an ephemeral
    /// loopback port, in shard order.
    fn launch(shards: Vec<FlatLabeling>) -> Fleet {
        let mut fleet = Fleet {
            addrs: Vec::new(),
            stops: Vec::new(),
            threads: Vec::new(),
        };
        for labeling in shards {
            let engine = Arc::new(QueryEngine::new(labeling, 1).expect("engine"));
            let config = ServerConfig {
                read_timeout: Duration::from_secs(5),
                allow_remote_shutdown: false,
                allow_remote_reload: false,
                ..ServerConfig::default()
            };
            let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
            fleet.addrs.push(server.local_addr().to_string());
            fleet.stops.push(server.stop_handle());
            fleet
                .threads
                .push(std::thread::spawn(move || server.serve().expect("serve")));
        }
        fleet
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for stop in &self.stops {
            stop.stop();
        }
        for t in self.threads.drain(..) {
            t.join().expect("daemon thread");
        }
    }
}

fn flatten(g: &Graph) -> FlatLabeling {
    FlatLabeling::from(PrunedLandmarkLabeling::by_degree(g).into_labeling())
}

/// Partitions `g`'s labeling `k` ways, serves it, and checks every pair
/// against BFS. Returns (cross-shard pairs checked, total pairs).
fn verify_fleet_against_bfs(g: &Graph, k: usize) -> (usize, usize) {
    let n = g.num_nodes();
    let shards = partition(&flatten(g), k).expect("partition");
    let fleet = Fleet::launch(shards);
    let mut router =
        ShardRouter::connect(&fleet.addrs, &ClientConfig::default()).expect("connect fleet");
    assert_eq!(router.num_shards(), k);
    assert_eq!(router.num_nodes(), n as u64);

    let mut pairs = Vec::with_capacity(n * n);
    let mut truth = Vec::with_capacity(n * n);
    for u in 0..n as NodeId {
        let dist = bfs::bfs_distances(g, u);
        for v in 0..n as NodeId {
            pairs.push((u, v));
            truth.push(dist[v as usize]);
        }
    }
    let got = router.query_many(&pairs).expect("routed batch");
    assert_eq!(got.len(), truth.len());
    for (i, (&(u, v), (&d, &t))) in pairs.iter().zip(got.iter().zip(&truth)).enumerate() {
        assert_eq!(d, t, "pair #{i}: routed d({u},{v}) = {d}, BFS says {t}");
    }

    // The single-query path takes a different route (per-pair frames);
    // spot-check it on a diagonal stripe including cross-shard pairs.
    for u in 0..n as NodeId {
        let v = (u as usize * 7 + 3) as NodeId % n as NodeId;
        let d = router.query(u, v).expect("routed single");
        assert_eq!(d, truth[u as usize * n + v as usize]);
    }

    let cross = pairs
        .iter()
        .filter(|&&(u, v)| shard_of(u, k) != shard_of(v, k))
        .count();
    (cross, pairs.len())
}

#[test]
fn four_shard_fleet_is_bfs_identical_on_gnm() {
    let g = generators::connected_gnm(72, 90, 23);
    let (cross, total) = verify_fleet_against_bfs(&g, 4);
    assert!(cross > 0, "no cross-shard pairs exercised");
    assert!(cross < total, "no same-shard pairs exercised");
}

#[test]
fn four_shard_fleet_is_bfs_identical_on_grid() {
    let g = generators::grid(8, 9);
    let (cross, total) = verify_fleet_against_bfs(&g, 4);
    assert!(cross > 0 && cross < total);
}

#[test]
fn two_shard_fleet_handles_singletons_and_range_errors() {
    let g = generators::grid(5, 5);
    let shards = partition(&flatten(&g), 2).expect("partition");
    let fleet = Fleet::launch(shards);
    let mut router = ShardRouter::connect(&fleet.addrs, &ClientConfig::default()).expect("connect");

    // (0, 24): 0 % 2 == 24 % 2 — owned. (0, 13): cross.
    assert_eq!(router.query(0, 24).expect("owned pair"), 8);
    let d = router.query(0, 13).expect("cross pair");
    assert_eq!(d, bfs::bfs_distance_between(&g, 0, 13));

    match router.query(0, 99) {
        Err(ShardError::NodeOutOfRange { v: 99, .. }) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    match router.query_many(&[(0, 1), (99, 0)]) {
        Err(ShardError::NodeOutOfRange { v: 99, .. }) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // Empty batch is a no-op, not an error.
    assert!(router.query_many(&[]).expect("empty batch").is_empty());
}

#[test]
fn router_reuses_one_connection_per_shard() {
    // Regression test: the router must hold its multiplexed connections
    // for its whole life. An earlier design dialed per label fetch,
    // which shows up in the daemons' metrics as connections_opened
    // growing with the query count.
    let g = generators::grid(6, 6);
    let n = g.num_nodes();
    let shards = partition(&flatten(&g), 2).expect("partition");
    let fleet = Fleet::launch(shards);
    let mut router = ShardRouter::connect(&fleet.addrs, &ClientConfig::default()).expect("connect");

    // A mixed workload: batches (owned + cross) and singles (cross).
    let mut pairs = Vec::new();
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            pairs.push((u, v));
        }
    }
    router.query_many(&pairs).expect("batch");
    for u in 0..8 {
        router.query(u, u + 7).expect("single");
    }

    // The metrics probe rides the same multiplexed connections, so each
    // daemon has seen exactly one connection ever: the router's.
    let snaps = router.fleet_metrics().expect("metrics");
    assert_eq!(snaps.len(), 2);
    for (s, snap) in snaps.iter().enumerate() {
        assert_eq!(
            snap.connections_opened, 1,
            "shard {s} saw {} connections; the router must reuse one",
            snap.connections_opened
        );
        assert_eq!(
            snap.connections_rejected, 0,
            "shard {s} rejected connections"
        );
    }
}

#[test]
fn router_rejects_an_incoherent_fleet() {
    // Two daemons serving *different-width* labelings cannot be one
    // partitioned store; the router must refuse at connect time.
    let small = flatten(&generators::grid(4, 4));
    let big = flatten(&generators::grid(5, 5));
    let fleet = Fleet::launch(vec![small, big]);
    match ShardRouter::connect(&fleet.addrs, &ClientConfig::default()) {
        Err(ShardError::ShardMismatch {
            shard: 1,
            expected: 16,
            got: 25,
        }) => {}
        other => panic!(
            "expected ShardMismatch, got {:?}",
            other.map(|r| r.num_nodes())
        ),
    }
}
