//! The shard manifest: a small text file tying a partitioned fleet
//! together.
//!
//! `hl-shard partition` writes one next to the shard stores it emits;
//! tooling that mounts the fleet reads it to learn the shard count, the
//! vertex range, and where each shard's store lives. The format is
//! line-oriented ASCII so it diffs and greps cleanly:
//!
//! ```text
//! HLSM 1
//! shards 4
//! nodes 1048576
//! entries 104589145
//! shard 0 shard-0.hlbs
//! shard 1 shard-1.hlbs
//! shard 2 shard-2.hlbs
//! shard 3 shard-3.hlbs
//! ```
//!
//! Store paths are recorded as given (relative paths stay relative to
//! the manifest's own directory, which keeps a partition directory
//! relocatable as a unit). Paths may contain spaces — the path is
//! everything after the shard index.

use std::fmt::Write as _;
use std::path::Path;

use crate::error::ShardError;
use crate::partition::shard_of;
use hl_graph::NodeId;

/// Magic first line of a manifest file (name + format version).
pub const MANIFEST_MAGIC: &str = "HLSM 1";

/// Metadata for one `k`-way partitioned labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of vertices every shard store covers (full-width).
    pub num_nodes: u64,
    /// Total label entries across all shards.
    pub num_entries: u64,
    /// Store path per shard, indexed by shard id.
    pub shard_paths: Vec<String>,
}

impl ShardManifest {
    /// Number of shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.shard_paths.len()
    }

    /// Which shard owns vertex `v`.
    pub fn shard_of(&self, v: NodeId) -> usize {
        shard_of(v, self.num_shards())
    }

    /// Renders the manifest in its on-disk form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        // fmt::Write to a String cannot fail, so the results are dropped.
        let _ = writeln!(out, "{MANIFEST_MAGIC}");
        let _ = writeln!(out, "shards {}", self.shard_paths.len());
        let _ = writeln!(out, "nodes {}", self.num_nodes);
        let _ = writeln!(out, "entries {}", self.num_entries);
        for (i, path) in self.shard_paths.iter().enumerate() {
            let _ = writeln!(out, "shard {i} {path}");
        }
        out
    }

    /// Parses the on-disk form, rejecting structural lies (wrong counts,
    /// out-of-order or duplicate shard lines) with a typed error.
    pub fn decode(text: &str) -> Result<Self, ShardError> {
        let bad = |m: String| ShardError::Manifest(m);
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim_end() == MANIFEST_MAGIC => {}
            other => {
                return Err(bad(format!(
                    "expected header {MANIFEST_MAGIC:?}, found {other:?}"
                )))
            }
        }
        let mut field = |name: &str| -> Result<u64, ShardError> {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("missing {name} line")))?;
            let rest = line
                .strip_prefix(name)
                .ok_or_else(|| bad(format!("expected {name:?} line, found {line:?}")))?;
            rest.trim()
                .parse::<u64>()
                .map_err(|e| bad(format!("bad {name} value {rest:?}: {e}")))
        };
        let shards = field("shards")?;
        let num_nodes = field("nodes")?;
        let num_entries = field("entries")?;
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        let shards = usize::try_from(shards)
            .map_err(|_| bad(format!("shard count {shards} does not fit this platform")))?;
        // Guard the allocation against a lying count: each shard needs
        // its own line, so the remaining text bounds the plausible count.
        if shards > text.lines().count() {
            return Err(bad(format!(
                "manifest declares {shards} shards but has too few lines"
            )));
        }
        let mut shard_paths = Vec::with_capacity(shards);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("shard ")
                .ok_or_else(|| bad(format!("expected a shard line, found {line:?}")))?;
            let (idx, path) = rest
                .split_once(' ')
                .ok_or_else(|| bad(format!("shard line without a path: {line:?}")))?;
            let idx: usize = idx
                .parse()
                .map_err(|e| bad(format!("bad shard index {idx:?}: {e}")))?;
            if idx != shard_paths.len() {
                return Err(bad(format!(
                    "shard lines out of order: expected {}, found {idx}",
                    shard_paths.len()
                )));
            }
            if path.is_empty() {
                return Err(bad(format!("shard {idx} has an empty path")));
            }
            shard_paths.push(path.to_string());
        }
        if shard_paths.len() != shards {
            return Err(bad(format!(
                "manifest declares {shards} shards but lists {}",
                shard_paths.len()
            )));
        }
        Ok(ShardManifest {
            num_nodes,
            num_entries,
            shard_paths,
        })
    }

    /// Writes the manifest to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ShardError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and parses the manifest at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, ShardError> {
        let text = std::fs::read_to_string(path)?;
        Self::decode(&text)
    }

    /// Shard store paths resolved against the manifest's own directory,
    /// so `ShardManifest::open("dir/manifest.hlsm")` yields paths that
    /// open from anywhere.
    pub fn resolved_paths<P: AsRef<Path>>(&self, manifest_path: P) -> Vec<std::path::PathBuf> {
        let base = manifest_path
            .as_ref()
            .parent()
            .unwrap_or_else(|| Path::new(""));
        self.shard_paths.iter().map(|p| base.join(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            num_nodes: 100,
            num_entries: 1234,
            shard_paths: vec!["shard-0.hlbs".into(), "sub dir/shard-1.hlbs".into()],
        }
    }

    #[test]
    fn roundtrips_including_paths_with_spaces() {
        let m = sample();
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.num_shards(), 2);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(7), 1);
    }

    #[test]
    fn rejects_structural_lies() {
        let m = sample();
        let good = m.encode();
        for (mutation, why) in [
            (good.replace("HLSM 1", "HLSM 9"), "wrong version"),
            (good.replace("shards 2", "shards 3"), "count lies high"),
            (good.replace("shards 2", "shards 0"), "zero shards"),
            (good.replace("shard 1", "shard 5"), "index out of order"),
            (good.replace("nodes 100", "nodes ten"), "unparsable nodes"),
            (
                good.lines().take(3).collect::<Vec<_>>().join("\n"),
                "truncated",
            ),
        ] {
            assert!(
                ShardManifest::decode(&mutation).is_err(),
                "accepted a manifest with {why}"
            );
        }
    }

    #[test]
    fn save_open_resolves_relative_paths() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("hlsm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.hlsm");
        sample().save(&path).unwrap();
        let m = ShardManifest::open(&path).unwrap();
        assert_eq!(m, sample());
        let resolved = m.resolved_paths(&path);
        assert_eq!(resolved[0], dir.join("shard-0.hlbs"));
        assert_eq!(resolved[1], dir.join("sub dir/shard-1.hlbs"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
