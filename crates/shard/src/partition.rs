//! Vertex-routed label partitioning.
//!
//! The partitioner splits one labeling into `k` *full-width* shard
//! labelings: shard `i` keeps the label run of every vertex it owns
//! (`v % k == i`) and an empty run for every vertex it does not. Keeping
//! the full vertex range in every shard costs `(n + 1 - n/k) * 8` bytes
//! of offsets per shard — trivial next to the label entries — and buys a
//! lot of simplicity in return:
//!
//! - hub ids stay global, so a label fetched from shard `a` merge-joins
//!   directly against one fetched from shard `b` with no translation;
//! - every shard store is a perfectly ordinary HLBS file that
//!   `hubserve serve` mounts unmodified — the shard tier needs no new
//!   daemon, only the [`crate::router::ShardRouter`] in front;
//! - every daemon advertises the same `num_nodes`, which the router uses
//!   as a cheap fleet-consistency check.
//!
//! Routing is `v % k` rather than contiguous ranges because generators
//! and real graphs alike concentrate high-degree (label-heavy) vertices
//! in id neighborhoods; the modulus spreads any such neighborhood across
//! the fleet.

use hl_core::FlatLabeling;
use hl_graph::NodeId;

use crate::error::ShardError;

/// Which shard owns vertex `v` in a `k`-way partition.
///
/// # Panics
///
/// Panics if `k` is zero; callers reach this only through paths that
/// have already validated the shard count ([`partition`] returns
/// [`ShardError::NoShards`] instead).
pub fn shard_of(v: NodeId, k: usize) -> usize {
    assert!(k > 0, "shard count must be at least 1");
    v as usize % k
}

/// Splits `flat` into `k` full-width shard labelings; shard `i` holds
/// exactly the labels of vertices with `v % k == i`.
pub fn partition(flat: &FlatLabeling, k: usize) -> Result<Vec<FlatLabeling>, ShardError> {
    if k == 0 {
        return Err(ShardError::NoShards);
    }
    let n = flat.num_nodes();
    // Size each arena exactly before filling it.
    let mut entries = vec![0usize; k];
    for v in 0..n {
        entries[v % k] += flat.hubs_of(v as NodeId).len();
    }
    let mut shards: Vec<FlatLabeling> = entries
        .iter()
        .map(|&e| FlatLabeling::with_capacity(n, e))
        .collect();
    for v in 0..n {
        let owner = v % k;
        for (i, shard) in shards.iter_mut().enumerate() {
            if i == owner {
                shard.push_label(flat.hubs_of(v as NodeId), flat.dists_of(v as NodeId));
            } else {
                shard.push_label(&[], &[]);
            }
        }
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    fn sample() -> FlatLabeling {
        let g = generators::connected_gnm(50, 70, 11);
        FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling())
    }

    #[test]
    fn partition_covers_every_label_exactly_once() {
        let flat = sample();
        let n = flat.num_nodes();
        for k in [1, 2, 3, 4, 7, 50, 64] {
            let shards = partition(&flat, k).expect("partition");
            assert_eq!(shards.len(), k);
            let mut covered = 0usize;
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.num_nodes(), n, "shards must stay full-width");
                for v in 0..n as NodeId {
                    if shard_of(v, k) == i {
                        assert_eq!(shard.hubs_of(v), flat.hubs_of(v));
                        assert_eq!(shard.dists_of(v), flat.dists_of(v));
                        covered += shard.hubs_of(v).len();
                    } else {
                        assert!(
                            shard.hubs_of(v).is_empty(),
                            "shard {i} holds a label for foreign vertex {v}"
                        );
                    }
                }
            }
            assert_eq!(
                covered,
                flat.num_entries(),
                "k={k} lost or duplicated entries"
            );
        }
    }

    #[test]
    fn one_shard_is_the_identity() {
        let flat = sample();
        let shards = partition(&flat, 1).expect("partition");
        assert_eq!(shards[0], flat);
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert!(matches!(partition(&sample(), 0), Err(ShardError::NoShards)));
    }

    #[test]
    fn same_shard_queries_answer_from_one_store() {
        // Owned pairs must answer correctly from the owner's store alone.
        let flat = sample();
        let shards = partition(&flat, 4).expect("partition");
        let n = flat.num_nodes() as NodeId;
        let mut checked = 0;
        for u in 0..n {
            for v in 0..n {
                if shard_of(u, 4) == shard_of(v, 4) {
                    assert_eq!(shards[shard_of(u, 4)].query(u, v), flat.query(u, v));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }
}
