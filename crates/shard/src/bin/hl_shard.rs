//! `hl-shard` — partition hub label stores and query a sharded fleet.
//!
//! ```text
//! hl-shard partition <store-file> <out-dir> --shards K [options]
//! hl-shard query --shard HOST:PORT [--shard HOST:PORT ...] [pairs-file]
//! ```
//!
//! `partition` opens a store of either HLBS version, splits its labels
//! into K full-width vertex-routed shard stores (`v % K` owns vertex
//! `v`), writes `shard-0.hlbs` … `shard-(K-1).hlbs` plus a
//! `manifest.hlsm` into `<out-dir>`, and prints a per-shard summary.
//! Shard stores default to HLBS v2 (the serving format); `--v1` emits
//! the γ-coded archival format instead. Each shard is then served by a
//! perfectly ordinary `hubserve serve shard-i.hlbs`.
//!
//! `query` connects to one daemon per `--shard` flag — order must match
//! shard ids — and answers `u v` pair lines: from a file as one routed
//! batch, else line-by-line from stdin. Same-shard pairs are answered by
//! the owning daemon; cross-shard pairs fetch both labels and merge-join
//! in the router. Output is `u v <distance>` with `inf` for unreachable,
//! byte-compatible with `hubserve query`.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use hl_graph::{NodeId, INFINITY};
use hl_net::ClientConfig;
use hl_server::{AnyStore, FlatStore, LabelStore};
use hl_shard::{partition, ShardManifest, ShardRouter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("partition") => cmd_partition(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!("usage: hl-shard partition|query ...");
            eprintln!("  partition <store-file> <out-dir> --shards K [--v1]");
            eprintln!("  query --shard HOST:PORT [--shard HOST:PORT ...] [pairs-file]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hl-shard: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct PartitionOpts {
    store_path: String,
    out_dir: String,
    shards: usize,
    v1: bool,
}

fn parse_partition_opts(args: &[String]) -> Result<PartitionOpts, String> {
    let usage = "usage: hl-shard partition <store-file> <out-dir> --shards K [--v1]";
    let mut positionals = Vec::new();
    let mut shards = 0usize;
    let mut v1 = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--shards" => {
                shards = take("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--v1" => v1 = true,
            other if !other.starts_with('-') => positionals.push(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let [store_path, out_dir] = positionals.as_slice() else {
        return Err(usage.into());
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(PartitionOpts {
        store_path: store_path.clone(),
        out_dir: out_dir.clone(),
        shards,
        v1,
    })
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let opts = parse_partition_opts(args)?;
    let started = Instant::now();
    let store = AnyStore::open(&opts.store_path)
        .map_err(|e| format!("cannot open store {}: {e}", opts.store_path))?;
    let version = store.version();
    let flat = store
        .into_flat()
        .map_err(|e| format!("cannot decode store {}: {e}", opts.store_path))?;
    println!(
        "partitioning {} (v{version}, {} nodes, {} entries) into {} shards",
        opts.store_path,
        flat.num_nodes(),
        flat.num_entries(),
        opts.shards
    );

    let out_dir = Path::new(&opts.out_dir);
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {}: {e}", opts.out_dir))?;
    let num_nodes = flat.num_nodes() as u64;
    let num_entries = flat.num_entries() as u64;
    let shards = partition(&flat, opts.shards).map_err(|e| e.to_string())?;
    drop(flat);

    let mut shard_paths = Vec::with_capacity(shards.len());
    for (i, shard) in shards.into_iter().enumerate() {
        let name = format!("shard-{i}.hlbs");
        let path = out_dir.join(&name);
        let n = num_nodes as usize;
        let owned = n / opts.shards + usize::from(i < n % opts.shards);
        let entries = shard.num_entries();
        let bytes = if opts.v1 {
            let store = LabelStore::from_flat(&shard);
            store
                .save(&path)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            store.file_len() as u64
        } else {
            let store = FlatStore::from_flat(shard);
            store
                .save(&path)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            store.file_len()
        };
        println!(
            "  shard {i}: {owned} vertices owned, {entries} entries, {bytes} bytes -> {}",
            path.display()
        );
        shard_paths.push(name);
    }

    let manifest = ShardManifest {
        num_nodes,
        num_entries,
        shard_paths,
    };
    let manifest_path = out_dir.join("manifest.hlsm");
    manifest
        .save(&manifest_path)
        .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
    println!(
        "manifest -> {} ({:.2}s total)",
        manifest_path.display(),
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

struct QueryOpts {
    addrs: Vec<String>,
    pairs_path: Option<String>,
}

fn parse_query_opts(args: &[String]) -> Result<QueryOpts, String> {
    let usage = "usage: hl-shard query --shard HOST:PORT [--shard HOST:PORT ...] [pairs-file]";
    let mut addrs = Vec::new();
    let mut pairs_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--shard" => addrs.push(take("--shard")?.to_string()),
            other if pairs_path.is_none() && !other.starts_with('-') => {
                pairs_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if addrs.is_empty() {
        return Err(usage.into());
    }
    Ok(QueryOpts { addrs, pairs_path })
}

fn parse_pair(line: &str, n: u64) -> Result<Option<(NodeId, NodeId)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let (Some(u), Some(v), None) = (it.next(), it.next(), it.next()) else {
        return Err(format!("expected 'u v', got '{line}'"));
    };
    let u: NodeId = u.parse().map_err(|_| format!("bad vertex id '{u}'"))?;
    let v: NodeId = v.parse().map_err(|_| format!("bad vertex id '{v}'"))?;
    if u64::from(u) >= n || u64::from(v) >= n {
        return Err(format!(
            "vertex out of range in '{line}' (fleet covers 0..{n})"
        ));
    }
    Ok(Some((u, v)))
}

fn print_answer(out: &mut impl Write, u: NodeId, v: NodeId, d: u64) -> Result<(), String> {
    let r = if d == INFINITY {
        writeln!(out, "{u} {v} inf")
    } else {
        writeln!(out, "{u} {v} {d}")
    };
    r.map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let opts = parse_query_opts(args)?;
    let mut router = ShardRouter::connect(&opts.addrs, &ClientConfig::default())
        .map_err(|e| format!("cannot connect fleet: {e}"))?;
    let n = router.num_nodes();
    eprintln!(
        "routing over {} shards covering {n} vertices",
        router.num_shards()
    );
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());

    match &opts.pairs_path {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut pairs = Vec::new();
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some(pair) = parse_pair(&line, n)? {
                    pairs.push(pair);
                }
            }
            let distances = router.query_many(&pairs).map_err(|e| e.to_string())?;
            for (&(u, v), &d) in pairs.iter().zip(&distances) {
                print_answer(&mut out, u, v, d)?;
            }
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some((u, v)) = parse_pair(&line, n)? {
                    let d = router.query(u, v).map_err(|e| e.to_string())?;
                    print_answer(&mut out, u, v, d)?;
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}
