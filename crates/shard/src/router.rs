//! The routing client: one logical distance oracle over a fleet of
//! ordinary `hubserve` daemons, each serving one shard store.
//!
//! Routing rules, per query pair `(u, v)`:
//!
//! - **Same shard** (`u % k == v % k`): the owning daemon holds both
//!   labels, so the pair ships as a plain `Query`/`QueryBatch` frame and
//!   the merge-join happens server-side — identical cost to unsharded
//!   serving.
//! - **Cross shard**: no single daemon can join the pair, so the router
//!   fetches `u`'s label from its owner and `v`'s from its owner
//!   (`Label`/`LabelBatch` frames) and merge-joins them locally. Hub ids
//!   are global across shards (see [`crate::partition()`]), which is what
//!   makes the local join sound.
//!
//! Batch workloads dedup label fetches per shard and pipeline both the
//! per-shard query batches and the label fetches, so a `k`-way fleet
//! sees `O(k)` round-trip waves per workload, not one per pair.

use std::collections::HashMap;

use hl_graph::{Distance, NodeId};
use hl_net::{ClientConfig, NetClient};

use crate::error::ShardError;
use crate::partition::shard_of;

/// How many vertices ride in one `LabelBatch` frame. Labels are heavy
/// (12 wire bytes per entry) and unbounded per vertex; 32 keeps even
/// thousand-hub labels comfortably under the 1 MiB default frame cap.
const LABEL_CHUNK: usize = 32;
/// How many pairs ride in one `QueryBatch` frame on the same-shard path.
const QUERY_CHUNK: usize = 256;
/// Pipeline depth for both frame kinds.
const WINDOW: usize = 4;

/// A connected fleet of shard daemons behaving as one distance oracle.
pub struct ShardRouter {
    clients: Vec<NetClient>,
    num_nodes: u64,
}

impl ShardRouter {
    /// Connects to one daemon per shard, in shard order, and verifies
    /// the fleet is coherent (every shard serves the same vertex count).
    pub fn connect(addrs: &[String], config: &ClientConfig) -> Result<Self, ShardError> {
        if addrs.is_empty() {
            return Err(ShardError::NoShards);
        }
        let mut clients = Vec::with_capacity(addrs.len());
        let mut num_nodes = 0u64;
        for (shard, addr) in addrs.iter().enumerate() {
            let client = NetClient::connect(addr.as_str(), config.clone())?;
            let got = client.num_nodes();
            if shard == 0 {
                num_nodes = got;
            } else if got != num_nodes {
                return Err(ShardError::ShardMismatch {
                    shard,
                    expected: num_nodes,
                    got,
                });
            }
            clients.push(client);
        }
        Ok(ShardRouter { clients, num_nodes })
    }

    /// Number of shards behind this router.
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// Number of vertices the sharded labeling covers.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    fn check(&self, v: NodeId) -> Result<(), ShardError> {
        if u64::from(v) < self.num_nodes {
            Ok(())
        } else {
            Err(ShardError::NodeOutOfRange {
                v,
                num_nodes: self.num_nodes,
            })
        }
    }

    /// One exact distance, routed to the owning shard or joined locally.
    pub fn query(&mut self, u: NodeId, v: NodeId) -> Result<Distance, ShardError> {
        self.check(u)?;
        self.check(v)?;
        let k = self.clients.len();
        let (su, sv) = (shard_of(u, k), shard_of(v, k));
        if su == sv {
            return Ok(self.clients[su].query(u, v)?);
        }
        let lu = self.clients[su].label(u)?;
        let lv = self.clients[sv].label(v)?;
        Ok(join_pairs(&lu, &lv))
    }

    /// A batch of exact distances, answered in request order. Same-shard
    /// pairs go out as per-shard query batches; cross-shard pairs are
    /// answered by fetching each distinct referenced label once per
    /// owning shard and joining locally.
    pub fn query_many(&mut self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<Distance>, ShardError> {
        for &(u, v) in pairs {
            self.check(u)?;
            self.check(v)?;
        }
        let k = self.clients.len();
        let mut out = vec![0u64; pairs.len()];

        // Same-shard pairs, grouped by owner: the original result
        // indexes and the pairs themselves, kept in lockstep.
        type OwnedGroup = (Vec<usize>, Vec<(NodeId, NodeId)>);
        let mut owned: Vec<OwnedGroup> = vec![Default::default(); k];
        // Distinct label fetches per shard for the cross-shard pairs.
        let mut wanted: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut slot: HashMap<NodeId, usize> = HashMap::new();
        let mut cross: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let (su, sv) = (shard_of(u, k), shard_of(v, k));
            if su == sv {
                owned[su].0.push(i);
                owned[su].1.push((u, v));
            } else {
                cross.push(i);
                for (s, w) in [(su, u), (sv, v)] {
                    slot.entry(w).or_insert_with(|| {
                        wanted[s].push(w);
                        wanted[s].len() - 1
                    });
                }
            }
        }

        for (s, (idxs, batch)) in owned.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let ds = self.clients[s].query_batch_pipelined(batch, QUERY_CHUNK, WINDOW)?;
            for (&i, d) in idxs.iter().zip(ds) {
                out[i] = d;
            }
        }

        let mut labels: Vec<Vec<Vec<(NodeId, Distance)>>> = Vec::with_capacity(k);
        for (s, vs) in wanted.iter().enumerate() {
            labels.push(if vs.is_empty() {
                Vec::new()
            } else {
                self.clients[s].label_batch_pipelined(vs, LABEL_CHUNK, WINDOW)?
            });
        }
        for i in cross {
            let (u, v) = pairs[i];
            let lu = &labels[shard_of(u, k)][slot[&u]];
            let lv = &labels[shard_of(v, k)][slot[&v]];
            out[i] = join_pairs(lu, lv);
        }
        Ok(out)
    }

    /// Asks every shard daemon to drain and exit (test/bench teardown).
    pub fn shutdown_fleet(&mut self) -> Result<(), ShardError> {
        for client in &mut self.clients {
            client.shutdown()?;
        }
        Ok(())
    }
}

/// Merge-join over two labels in wire form (sorted `(hub, dist)` pairs).
fn join_pairs(a: &[(NodeId, Distance)], b: &[(NodeId, Distance)]) -> Distance {
    // Small labels dominate, so unzipping to slices would cost more than
    // it saves; walk the pair vectors directly.
    let mut best = hl_graph::INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].1.saturating_add(b[j].1);
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::label::merge_join;

    #[test]
    fn join_pairs_matches_slice_merge_join() {
        let a = vec![(0u32, 1u64), (3, 2), (9, 5)];
        let b = vec![(1u32, 1u64), (3, 4), (8, 1), (9, 0)];
        let (ah, ad): (Vec<_>, Vec<_>) = a.iter().copied().unzip();
        let (bh, bd): (Vec<_>, Vec<_>) = b.iter().copied().unzip();
        assert_eq!(join_pairs(&a, &b), merge_join(&ah, &ad, &bh, &bd));
        assert_eq!(join_pairs(&a, &b), 5);
        assert_eq!(join_pairs(&a, &[]), hl_graph::INFINITY);
    }
}
