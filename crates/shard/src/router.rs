//! The routing client: one logical distance oracle over a fleet of
//! ordinary `hubserve` daemons, each serving one shard store.
//!
//! Routing rules, per query pair `(u, v)`:
//!
//! - **Same shard** (`u % k == v % k`): the owning daemon holds both
//!   labels, so the pair ships as a plain `Query`/`QueryBatch` frame and
//!   the merge-join happens server-side — identical cost to unsharded
//!   serving.
//! - **Cross shard**: no single daemon can join the pair, so the router
//!   fetches `u`'s label from its owner and `v`'s from its owner
//!   (`Label`/`LabelBatch` frames) and merge-joins them locally. Hub ids
//!   are global across shards (see [`crate::partition()`]), which is what
//!   makes the local join sound.
//!
//! The router holds one *multiplexed* HLNP v2 connection per shard
//! ([`hl_net::MuxClient`]), opened at [`ShardRouter::connect`] and
//! reused for every query after — connecting per query would pay a TCP
//! and handshake round trip each time and show up as one opened
//! connection per query in the daemons' metrics. Fan-out rides the
//! multiplexing: a cross-shard pair submits both label fetches before
//! waiting on either, and batch workloads keep a window of chunk frames
//! in flight on *every* shard at once, so the fleet computes in
//! parallel while the router joins.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use hl_graph::{Distance, NodeId};
use hl_net::{ClientConfig, MuxClient, NetError, Request, Response};
use hl_server::MetricsSnapshot;

use crate::error::ShardError;
use crate::partition::shard_of;

/// How many vertices ride in one `LabelBatch` frame. Labels are heavy
/// (12 wire bytes per entry) and unbounded per vertex; 32 keeps even
/// thousand-hub labels comfortably under the 1 MiB default frame cap.
const LABEL_CHUNK: usize = 32;
/// How many pairs ride in one `QueryBatch` frame on the same-shard path.
const QUERY_CHUNK: usize = 256;
/// Chunk frames kept in flight *per shard*. Well under the server's
/// default per-connection cap (1024), so the fleet never answers `Busy`
/// to its own router.
const WINDOW: usize = 16;

/// One shard's unit of batch work: a chunk frame to submit and enough
/// context to file its response.
enum Work {
    /// A same-shard `QueryBatch` chunk; `idxs` are the output slots the
    /// resulting distances land in, in order.
    Query {
        idxs: Vec<usize>,
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// A `LabelBatch` chunk of distinct vertices this shard owns.
    Labels { vs: Vec<NodeId> },
}

/// A connected fleet of shard daemons behaving as one distance oracle.
pub struct ShardRouter {
    clients: Vec<MuxClient>,
    num_nodes: u64,
    request_timeout: Duration,
}

impl ShardRouter {
    /// Connects one multiplexed connection to each daemon, in shard
    /// order, and verifies the fleet is coherent (every shard serves the
    /// same vertex count). These connections are held for the router's
    /// whole life; no query opens another.
    pub fn connect(addrs: &[String], config: &ClientConfig) -> Result<Self, ShardError> {
        if addrs.is_empty() {
            return Err(ShardError::NoShards);
        }
        let mut clients = Vec::with_capacity(addrs.len());
        let mut num_nodes = 0u64;
        for (shard, addr) in addrs.iter().enumerate() {
            let client = MuxClient::connect(addr.as_str(), config.clone())?;
            let got = client.num_nodes();
            if shard == 0 {
                num_nodes = got;
            } else if got != num_nodes {
                return Err(ShardError::ShardMismatch {
                    shard,
                    expected: num_nodes,
                    got,
                });
            }
            clients.push(client);
        }
        Ok(ShardRouter {
            clients,
            num_nodes,
            request_timeout: config.request_timeout,
        })
    }

    /// Number of shards behind this router.
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// Number of vertices the sharded labeling covers.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    fn check(&self, v: NodeId) -> Result<(), ShardError> {
        if u64::from(v) < self.num_nodes {
            Ok(())
        } else {
            Err(ShardError::NodeOutOfRange {
                v,
                num_nodes: self.num_nodes,
            })
        }
    }

    /// One exact distance, routed to the owning shard or joined locally.
    /// Cross-shard pairs overlap their two label fetches: both are on
    /// the wire before either response is awaited.
    pub fn query(&mut self, u: NodeId, v: NodeId) -> Result<Distance, ShardError> {
        self.check(u)?;
        self.check(v)?;
        let k = self.clients.len();
        let (su, sv) = (shard_of(u, k), shard_of(v, k));
        if su == sv {
            return Ok(self.clients[su].query(u, v)?);
        }
        let id_u = self.clients[su].submit(&Request::Label { v: u })?;
        let id_v = self.clients[sv].submit(&Request::Label { v })?;
        let lu = expect_label(self.clients[su].wait(id_u, self.request_timeout)?)?;
        let lv = expect_label(self.clients[sv].wait(id_v, self.request_timeout)?)?;
        Ok(join_pairs(&lu, &lv))
    }

    /// A batch of exact distances, answered in request order. Same-shard
    /// pairs go out as per-shard query batches; cross-shard pairs are
    /// answered by fetching each distinct referenced label once from its
    /// owning shard and joining locally. All shards crunch their chunks
    /// concurrently — the router keeps up to `WINDOW` (16) frames in flight
    /// on every connection while reaping completions.
    pub fn query_many(&mut self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<Distance>, ShardError> {
        for &(u, v) in pairs {
            self.check(u)?;
            self.check(v)?;
        }
        let k = self.clients.len();
        let mut out = vec![0u64; pairs.len()];

        // Same-shard pairs, grouped by owner: the original result
        // indexes and the pairs themselves, kept in lockstep.
        type OwnedGroup = (Vec<usize>, Vec<(NodeId, NodeId)>);
        let mut owned: Vec<OwnedGroup> = vec![Default::default(); k];
        // Distinct label fetches per shard for the cross-shard pairs.
        let mut wanted: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut slot: HashMap<NodeId, usize> = HashMap::new();
        let mut cross: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let (su, sv) = (shard_of(u, k), shard_of(v, k));
            if su == sv {
                owned[su].0.push(i);
                owned[su].1.push((u, v));
            } else {
                cross.push(i);
                for (s, w) in [(su, u), (sv, v)] {
                    slot.entry(w).or_insert_with(|| {
                        wanted[s].push(w);
                        wanted[s].len() - 1
                    });
                }
            }
        }

        // Chunk every shard's share into wire-sized work items.
        let mut work: Vec<Vec<Work>> = Vec::with_capacity(k);
        for (s, (idxs, batch)) in owned.iter().enumerate() {
            let mut items = Vec::new();
            for (ic, pc) in idxs.chunks(QUERY_CHUNK).zip(batch.chunks(QUERY_CHUNK)) {
                items.push(Work::Query {
                    idxs: ic.to_vec(),
                    pairs: pc.to_vec(),
                });
            }
            for vc in wanted[s].chunks(LABEL_CHUNK) {
                items.push(Work::Labels { vs: vc.to_vec() });
            }
            work.push(items);
        }

        // Submit/reap engine: fill every shard's window, then take one
        // completion per shard per sweep so refills rotate fairly and no
        // shard sits idle while another drains.
        let mut next: Vec<usize> = vec![0; k];
        let mut inflight: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); k];
        let mut responses: Vec<Vec<Option<Response>>> = work
            .iter()
            .map(|w| (0..w.len()).map(|_| None).collect())
            .collect();
        loop {
            let mut done = true;
            for s in 0..k {
                while inflight[s].len() < WINDOW && next[s] < work[s].len() {
                    let req = match &work[s][next[s]] {
                        Work::Query { pairs, .. } => Request::QueryBatch(pairs.clone()),
                        Work::Labels { vs } => Request::LabelBatch(vs.clone()),
                    };
                    let id = self.clients[s].submit(&req)?;
                    inflight[s].push_back((next[s], id));
                    next[s] += 1;
                }
                if next[s] < work[s].len() || !inflight[s].is_empty() {
                    done = false;
                }
            }
            if done {
                break;
            }
            for s in 0..k {
                if let Some((at, id)) = inflight[s].pop_front() {
                    let resp = self.clients[s].wait(id, self.request_timeout)?;
                    responses[s][at] = Some(resp);
                }
            }
        }

        // File the completions: distances into their slots, label chunks
        // concatenated back into per-shard tables for the local joins.
        let mut labels: Vec<Vec<Vec<(NodeId, Distance)>>> = vec![Vec::new(); k];
        for (s, (items, resps)) in work.into_iter().zip(responses).enumerate() {
            for (item, resp) in items.into_iter().zip(resps) {
                let resp = resp.ok_or_else(|| {
                    NetError::ConnectionDead("batch completion went missing".to_string())
                })?;
                match item {
                    Work::Query { idxs, pairs } => {
                        let ds = expect_distance_batch(resp, pairs.len())?;
                        for (i, d) in idxs.into_iter().zip(ds) {
                            out[i] = d;
                        }
                    }
                    Work::Labels { vs } => {
                        labels[s].extend(expect_label_batch(resp, vs.len())?);
                    }
                }
            }
        }
        for i in cross {
            let (u, v) = pairs[i];
            let lu = &labels[shard_of(u, k)][slot[&u]];
            let lv = &labels[shard_of(v, k)][slot[&v]];
            out[i] = join_pairs(lu, lv);
        }
        Ok(out)
    }

    /// Metrics snapshots from every shard daemon, in shard order. Rides
    /// the same multiplexed connections as the queries.
    pub fn fleet_metrics(&mut self) -> Result<Vec<MetricsSnapshot>, ShardError> {
        self.clients
            .iter()
            .map(|c| c.metrics().map_err(ShardError::from))
            .collect()
    }

    /// Asks every shard daemon to drain and exit (test/bench teardown).
    pub fn shutdown_fleet(&mut self) -> Result<(), ShardError> {
        for client in &self.clients {
            client.shutdown()?;
        }
        Ok(())
    }
}

fn expect_label(resp: Response) -> Result<Vec<(NodeId, Distance)>, NetError> {
    match resp {
        Response::Label(pairs) => Ok(pairs),
        Response::Error { code, message } => Err(NetError::Remote { code, message }),
        other => Err(NetError::UnexpectedResponse {
            expected: "Label",
            got: format!("{other:?}"),
        }),
    }
}

fn expect_distance_batch(resp: Response, sent: usize) -> Result<Vec<Distance>, NetError> {
    match resp {
        Response::DistanceBatch(ds) if ds.len() == sent => Ok(ds),
        Response::DistanceBatch(ds) => Err(NetError::UnexpectedResponse {
            expected: "DistanceBatch of matching length",
            got: format!("DistanceBatch of {} (sent {sent})", ds.len()),
        }),
        Response::Error { code, message } => Err(NetError::Remote { code, message }),
        other => Err(NetError::UnexpectedResponse {
            expected: "DistanceBatch",
            got: format!("{other:?}"),
        }),
    }
}

fn expect_label_batch(
    resp: Response,
    sent: usize,
) -> Result<Vec<Vec<(NodeId, Distance)>>, NetError> {
    match resp {
        Response::LabelBatch(labels) if labels.len() == sent => Ok(labels),
        Response::LabelBatch(labels) => Err(NetError::UnexpectedResponse {
            expected: "LabelBatch of matching length",
            got: format!("LabelBatch of {} (sent {sent})", labels.len()),
        }),
        Response::Error { code, message } => Err(NetError::Remote { code, message }),
        other => Err(NetError::UnexpectedResponse {
            expected: "LabelBatch",
            got: format!("{other:?}"),
        }),
    }
}

/// Merge-join over two labels in wire form (sorted `(hub, dist)` pairs).
fn join_pairs(a: &[(NodeId, Distance)], b: &[(NodeId, Distance)]) -> Distance {
    // Small labels dominate, so unzipping to slices would cost more than
    // it saves; walk the pair vectors directly.
    let mut best = hl_graph::INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].1.saturating_add(b[j].1);
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::label::merge_join;

    #[test]
    fn join_pairs_matches_slice_merge_join() {
        let a = vec![(0u32, 1u64), (3, 2), (9, 5)];
        let b = vec![(1u32, 1u64), (3, 4), (8, 1), (9, 0)];
        let (ah, ad): (Vec<_>, Vec<_>) = a.iter().copied().unzip();
        let (bh, bd): (Vec<_>, Vec<_>) = b.iter().copied().unzip();
        assert_eq!(join_pairs(&a, &b), merge_join(&ah, &ad, &bh, &bd));
        assert_eq!(join_pairs(&a, &b), 5);
        assert_eq!(join_pairs(&a, &[]), hl_graph::INFINITY);
    }
}
