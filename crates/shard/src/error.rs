//! The one error type every sharding operation funnels into.

use std::error::Error;
use std::fmt;

use hl_graph::NodeId;
use hl_net::NetError;
use hl_server::StoreError;

/// Everything that can go wrong partitioning, mounting, or routing.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure reading or writing shard stores or manifests.
    Io(std::io::Error),
    /// A shard store failed to parse or encode.
    Store(StoreError),
    /// A shard daemon failed at the network layer.
    Net(NetError),
    /// A manifest file violated its format; the message says how.
    Manifest(String),
    /// Partitioning or routing was asked for zero shards.
    NoShards,
    /// A queried vertex is outside the labeled range.
    NodeOutOfRange {
        /// The offending vertex.
        v: NodeId,
        /// Number of vertices the sharded labeling covers.
        num_nodes: u64,
    },
    /// The shard fleet disagrees about the world: every shard store is
    /// full-width, so every daemon must report the same vertex count.
    ShardMismatch {
        /// Index of the disagreeing shard.
        shard: usize,
        /// What shard 0 reported.
        expected: u64,
        /// What this shard reported.
        got: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "i/o error: {e}"),
            ShardError::Store(e) => write!(f, "store error: {e}"),
            ShardError::Net(e) => write!(f, "network error: {e}"),
            ShardError::Manifest(m) => write!(f, "malformed manifest: {m}"),
            ShardError::NoShards => write!(f, "shard count must be at least 1"),
            ShardError::NodeOutOfRange { v, num_nodes } => {
                write!(f, "node {v} out of range (labeling covers {num_nodes})")
            }
            ShardError::ShardMismatch {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard} serves {got} vertices but shard 0 serves {expected}; \
                 the fleet is not serving one partitioned store"
            ),
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            ShardError::Store(e) => Some(e),
            ShardError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> Self {
        ShardError::Store(e)
    }
}

impl From<NetError> for ShardError {
    fn from(e: NetError) -> Self {
        ShardError::Net(e)
    }
}
