//! K-way sharded serving for hub labelings.
//!
//! A single `hubserve` daemon holds the whole label arena in memory;
//! past a few hundred million label entries that stops being a deployment
//! option. This crate splits one labeling across a fleet of ordinary
//! daemons without giving up *exact* answers:
//!
//! - [`partition()`]: splits a [`hl_core::FlatLabeling`] into `k`
//!   full-width shard labelings routed by `v % k`. Each shard serializes
//!   to a perfectly ordinary HLBS store that `hubserve serve` mounts
//!   unmodified, and hub ids stay global so labels from different shards
//!   still merge-join.
//! - [`manifest`]: the small text file ([`ShardManifest`]) that records
//!   the fleet layout next to the emitted stores.
//! - [`router`]: [`ShardRouter`], a client that makes the fleet behave
//!   as one oracle — same-shard pairs are answered server-side by the
//!   owning daemon, cross-shard pairs by fetching the two labels (HLNP
//!   `Label`/`LabelBatch` frames) and merge-joining locally.
//!
//! The `hl-shard` binary wires these together: `hl-shard partition`
//! emits shard stores plus manifest, `hl-shard query` drives a running
//! fleet from pair lists.
//!
//! The 2-hop-cover property survives partitioning untouched: a query
//! `(u, v)` needs only `L(u)` and `L(v)`, so *any* assignment of whole
//! vertices to shards preserves exactness — the paper's lower bounds
//! (see `PAPER.md`) bound total label size, not where labels live.

#![forbid(unsafe_code)]

pub mod error;
pub mod manifest;
pub mod partition;
pub mod router;

pub use error::ShardError;
pub use manifest::ShardManifest;
pub use partition::{partition, shard_of};
pub use router::ShardRouter;
