//! Ablations over design choices DESIGN.md calls out: PLL vertex order,
//! canonical HHL vs minimal (PLL), and post-hoc label minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_bench::{family_graph, Family};
use hl_core::hierarchical::canonical_hhl_by_degree;
use hl_core::minimize::minimize_labeling;
use hl_core::order;
use hl_core::pll::PrunedLandmarkLabeling;

fn bench_ablation(c: &mut Criterion) {
    let mut orders = c.benchmark_group("pll-order-ablation");
    orders.sample_size(10);
    let g = family_graph(Family::Grid, 196, 3);
    orders.bench_function("degree", |b| {
        b.iter(|| PrunedLandmarkLabeling::by_degree(&g).into_labeling().total_hubs())
    });
    orders.bench_function("random", |b| {
        b.iter(|| PrunedLandmarkLabeling::by_random_order(&g, 1).into_labeling().total_hubs())
    });
    orders.bench_function("betweenness", |b| {
        b.iter(|| PrunedLandmarkLabeling::by_betweenness(&g, 16, 1).into_labeling().total_hubs())
    });
    orders.bench_function("closeness", |b| {
        b.iter(|| {
            PrunedLandmarkLabeling::with_order(&g, order::by_closeness(&g))
                .into_labeling()
                .total_hubs()
        })
    });
    orders.finish();

    let mut hhl = c.benchmark_group("hhl-vs-pll");
    hhl.sample_size(10);
    for n in [40usize, 80] {
        let g = hl_graph::generators::connected_gnm(n, n / 2, 9);
        hhl.bench_with_input(BenchmarkId::new("canonical-hhl", n), &g, |b, g| {
            b.iter(|| canonical_hhl_by_degree(g).expect("hhl").total_hubs())
        });
        hhl.bench_with_input(BenchmarkId::new("pll", n), &g, |b, g| {
            b.iter(|| PrunedLandmarkLabeling::by_degree(g).into_labeling().total_hubs())
        });
    }
    hhl.finish();

    let mut min = c.benchmark_group("minimize");
    min.sample_size(10);
    let g = family_graph(Family::SparseRandom, 60, 4);
    let labeling = PrunedLandmarkLabeling::by_random_order(&g, 2).into_labeling();
    min.bench_function("greedy-prune", |b| {
        b.iter(|| minimize_labeling(&g, &labeling).expect("minimize").1.removed)
    });
    min.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
