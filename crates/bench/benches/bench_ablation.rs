//! Ablations over design choices DESIGN.md calls out: PLL vertex order,
//! canonical HHL vs minimal (PLL), and post-hoc label minimization.

use hl_bench::timing::bench;
use hl_bench::{family_graph, Family};
use hl_core::hierarchical::canonical_hhl_by_degree;
use hl_core::minimize::minimize_labeling;
use hl_core::order;
use hl_core::pll::PrunedLandmarkLabeling;

fn main() {
    let g = family_graph(Family::Grid, 196, 3);
    bench("pll-order-ablation", "degree", || {
        PrunedLandmarkLabeling::by_degree(&g)
            .into_labeling()
            .total_hubs()
    });
    bench("pll-order-ablation", "random", || {
        PrunedLandmarkLabeling::by_random_order(&g, 1)
            .into_labeling()
            .total_hubs()
    });
    bench("pll-order-ablation", "betweenness", || {
        PrunedLandmarkLabeling::by_betweenness(&g, 16, 1)
            .expect("betweenness order")
            .into_labeling()
            .total_hubs()
    });
    bench("pll-order-ablation", "closeness", || {
        PrunedLandmarkLabeling::with_order(&g, order::by_closeness(&g).expect("closeness order"))
            .into_labeling()
            .total_hubs()
    });

    for n in [40usize, 80] {
        let g = hl_graph::generators::connected_gnm(n, n / 2, 9);
        bench("hhl-vs-pll", &format!("canonical-hhl/{n}"), || {
            canonical_hhl_by_degree(&g).expect("hhl").total_hubs()
        });
        bench("hhl-vs-pll", &format!("pll/{n}"), || {
            PrunedLandmarkLabeling::by_degree(&g)
                .into_labeling()
                .total_hubs()
        });
    }

    let g = family_graph(Family::SparseRandom, 60, 4);
    let labeling = PrunedLandmarkLabeling::by_random_order(&g, 2).into_labeling();
    bench("minimize", "greedy-prune", || {
        minimize_labeling(&g, &labeling)
            .expect("minimize")
            .1
            .removed
    });
}
