//! T1.6 — Sum-Index protocol: shared-setup construction cost and
//! per-query (message + referee) cost, versus the naive protocol.

use hl_bench::timing::bench;
use hl_lowerbound::GadgetParams;
use hl_sumindex::naive;
use hl_sumindex::protocol::GraphProtocol;
use hl_sumindex::repr::Repr;
use hl_sumindex::SumIndexInstance;

fn main() {
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let params = GadgetParams::new(b, ell).expect("params");
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 5);
        bench("sumindex-setup", &format!("{b}-{ell}"), || {
            GraphProtocol::new(params, &instance).expect("protocol")
        });
    }

    let params = GadgetParams::new(3, 2).expect("params");
    let m = Repr::new(params).modulus() as usize;
    let instance = SumIndexInstance::random(m, 5);
    let protocol = GraphProtocol::new(params, &instance).expect("protocol");
    bench("sumindex-query", "graph-protocol", || {
        let mut acc = 0u32;
        for a in 0..m as u64 {
            acc += protocol.run(a, (a * 7 + 3) % m as u64) as u32;
        }
        acc
    });
    bench("sumindex-query", "naive-protocol", || {
        let mut acc = 0u32;
        for a in 0..m {
            let ma = naive::alice_message(&instance, a);
            let mb = naive::bob_message(&instance, (a * 7 + 3) % m);
            acc += naive::referee(m, &ma, &mb) as u32;
        }
        acc
    });
}
