//! T1.6 — Sum-Index protocol: shared-setup construction cost and
//! per-query (message + referee) cost, versus the naive protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_lowerbound::GadgetParams;
use hl_sumindex::naive;
use hl_sumindex::protocol::GraphProtocol;
use hl_sumindex::repr::Repr;
use hl_sumindex::SumIndexInstance;

fn bench_sumindex(c: &mut Criterion) {
    let mut setup = c.benchmark_group("sumindex-setup");
    setup.sample_size(10);
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let params = GadgetParams::new(b, ell).expect("params");
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 5);
        setup.bench_with_input(
            BenchmarkId::from_parameter(format!("{b}-{ell}")),
            &(params, instance),
            |bch, (params, instance)| {
                bch.iter(|| GraphProtocol::new(*params, instance).expect("protocol"))
            },
        );
    }
    setup.finish();

    let mut query = c.benchmark_group("sumindex-query");
    let params = GadgetParams::new(3, 2).expect("params");
    let m = Repr::new(params).modulus() as usize;
    let instance = SumIndexInstance::random(m, 5);
    let protocol = GraphProtocol::new(params, &instance).expect("protocol");
    query.bench_function("graph-protocol", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..m as u64 {
                acc += protocol.run(a, (a * 7 + 3) % m as u64) as u32;
            }
            acc
        })
    });
    query.bench_function("naive-protocol", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..m {
                let ma = naive::alice_message(&instance, a);
                let mb = naive::bob_message(&instance, (a * 7 + 3) % m);
                acc += naive::referee(m, &ma, &mb) as u32;
            }
            acc
        })
    });
    query.finish();
}

criterion_group!(benches, bench_sumindex);
criterion_main!(benches);
