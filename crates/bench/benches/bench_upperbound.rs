//! T4.1 / T1.4 — the RS-based construction over the threshold `D` and the
//! degree-reduction pipeline.

use hl_bench::timing::bench;
use hl_bench::{family_graph, Family};
use hl_core::rs_based::{project_labeling, rs_labeling, RsParams};
use hl_graph::generators;
use hl_graph::transform::reduce_degree;

fn main() {
    let g = family_graph(Family::Degree3Expander, 150, 7);
    for d in [2u64, 3, 4, 6] {
        bench("rs-threshold-sweep", &format!("{d}"), || {
            rs_labeling(
                &g,
                RsParams {
                    threshold: d,
                    seed: 1,
                },
            )
            .expect("rs")
        });
    }

    let skew = generators::skewed_sparse(150, 80, 3);
    bench("theorem14-pipeline", "reduce-label-project", || {
        let red = reduce_degree(&skew, 4).expect("reduce");
        let (hl, _) = rs_labeling(
            &red.graph,
            RsParams {
                threshold: 3,
                seed: 1,
            },
        )
        .expect("rs");
        project_labeling(&hl, &red.representative, &red.origin)
    });
}
