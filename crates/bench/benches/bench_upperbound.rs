//! T4.1 / T1.4 — the RS-based construction over the threshold `D` and the
//! degree-reduction pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_bench::{family_graph, Family};
use hl_core::rs_based::{project_labeling, rs_labeling, RsParams};
use hl_graph::generators;
use hl_graph::transform::reduce_degree;

fn bench_upperbound(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs-threshold-sweep");
    group.sample_size(10);
    let g = family_graph(Family::Degree3Expander, 150, 7);
    for d in [2u64, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| rs_labeling(&g, RsParams { threshold: d, seed: 1 }).expect("rs"))
        });
    }
    group.finish();

    let mut pipeline = c.benchmark_group("theorem14-pipeline");
    pipeline.sample_size(10);
    let skew = generators::skewed_sparse(150, 80, 3);
    pipeline.bench_function("reduce-label-project", |b| {
        b.iter(|| {
            let red = reduce_degree(&skew, 4).expect("reduce");
            let (hl, _) =
                rs_labeling(&red.graph, RsParams { threshold: 3, seed: 1 }).expect("rs");
            project_labeling(&hl, &red.representative, &red.origin)
        })
    });
    pipeline.finish();
}

criterion_group!(benches, bench_upperbound);
criterion_main!(benches);
