//! Oracle comparison: query latency of Dijkstra / bidirectional / ALT /
//! Contraction Hierarchies / hub labels on the same weighted instance —
//! the `ST = Õ(n²)` tradeoff discussion of the paper's introduction.

use criterion::{criterion_group, criterion_main, Criterion};

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::{generators, NodeId};
use hl_oracles::oracle::{BidirectionalOracle, DijkstraOracle, DistanceOracle, HubLabelOracle};
use hl_oracles::{AltOracle, ContractionHierarchy};

fn bench_oracles(c: &mut Criterion) {
    let g = generators::weighted_grid(20, 20, 13);
    let n = g.num_nodes() as u64;
    let queries: Vec<(NodeId, NodeId)> =
        (0..64u64).map(|i| (((i * 97) % n) as NodeId, ((i * 263) % n) as NodeId)).collect();

    let dij = DijkstraOracle { graph: &g };
    let bi = BidirectionalOracle { graph: &g };
    let alt = AltOracle::with_farthest_landmarks(&g, 8);
    let ch = ContractionHierarchy::build(&g);
    let hub = HubLabelOracle { labeling: PrunedLandmarkLabeling::by_betweenness(&g, 24, 1).into_labeling() };

    let mut group = c.benchmark_group("oracle-query");
    group.sample_size(20);
    let run = |oracle: &dyn DistanceOracle| {
        let mut acc = 0u64;
        for &(u, v) in &queries {
            acc = acc.wrapping_add(oracle.distance(u, v));
        }
        acc
    };
    group.bench_function("dijkstra", |b| b.iter(|| run(&dij)));
    group.bench_function("bidirectional", |b| b.iter(|| run(&bi)));
    group.bench_function("alt-8", |b| b.iter(|| run(&alt)));
    group.bench_function("contraction-hierarchy", |b| b.iter(|| run(&ch)));
    group.bench_function("hub-labels", |b| b.iter(|| run(&hub)));
    group.finish();

    let mut build = c.benchmark_group("oracle-build");
    build.sample_size(10);
    build.bench_function("ch-build", |b| b.iter(|| ContractionHierarchy::build(&g)));
    build.bench_function("alt-build", |b| {
        b.iter(|| AltOracle::with_farthest_landmarks(&g, 8).landmarks().len())
    });
    build.bench_function("pll-build", |b| {
        b.iter(|| PrunedLandmarkLabeling::by_betweenness(&g, 24, 1).into_labeling().total_hubs())
    });
    build.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
