//! Oracle comparison: query latency of Dijkstra / bidirectional / ALT /
//! Contraction Hierarchies / hub labels on the same weighted instance —
//! the `ST = Õ(n²)` tradeoff discussion of the paper's introduction.

use hl_bench::timing::bench;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::{generators, NodeId};
use hl_oracles::oracle::{BidirectionalOracle, DijkstraOracle, DistanceOracle, HubLabelOracle};
use hl_oracles::{AltOracle, ContractionHierarchy};

fn main() {
    let g = generators::weighted_grid(20, 20, 13);
    let n = g.num_nodes() as u64;
    let queries: Vec<(NodeId, NodeId)> = (0..64u64)
        .map(|i| (((i * 97) % n) as NodeId, ((i * 263) % n) as NodeId))
        .collect();

    let dij = DijkstraOracle { graph: &g };
    let bi = BidirectionalOracle { graph: &g };
    let alt = AltOracle::with_farthest_landmarks(&g, 8);
    let ch = ContractionHierarchy::build(&g);
    let hub = HubLabelOracle {
        labeling: PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
            .expect("betweenness order")
            .into_labeling(),
    };

    let run = |oracle: &dyn DistanceOracle| {
        let mut acc = 0u64;
        for &(u, v) in &queries {
            acc = acc.wrapping_add(oracle.distance(u, v));
        }
        acc
    };
    bench("oracle-query", "dijkstra", || run(&dij));
    bench("oracle-query", "bidirectional", || run(&bi));
    bench("oracle-query", "alt-8", || run(&alt));
    bench("oracle-query", "contraction-hierarchy", || run(&ch));
    bench("oracle-query", "hub-labels", || run(&hub));

    bench("oracle-build", "ch-build", || {
        ContractionHierarchy::build(&g)
    });
    bench("oracle-build", "alt-build", || {
        AltOracle::with_farthest_landmarks(&g, 8).landmarks().len()
    });
    bench("oracle-build", "pll-build", || {
        PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
            .expect("betweenness order")
            .into_labeling()
            .total_hubs()
    });
}
