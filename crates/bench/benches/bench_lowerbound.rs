//! T2.1 / T1.1 / L2.2 — gadget construction, Lemma 2.2 verification and
//! the PLL hub-size measurement on the lower-bound family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_core::pll::PrunedLandmarkLabeling;
use hl_lowerbound::midpoint::check_all_pairs;
use hl_lowerbound::{GadgetParams, GGraph, HGraph};

fn bench_lowerbound(c: &mut Criterion) {
    let mut build = c.benchmark_group("gadget-build");
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let p = GadgetParams::new(b, ell).expect("params");
        build.bench_with_input(BenchmarkId::new("H", format!("{b}-{ell}")), &p, |bch, &p| {
            bch.iter(|| HGraph::build(p))
        });
    }
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2)] {
        let p = GadgetParams::new(b, ell).expect("params");
        build.bench_with_input(BenchmarkId::new("G", format!("{b}-{ell}")), &p, |bch, &p| {
            bch.iter(|| GGraph::build(p))
        });
    }
    build.finish();

    let mut verify = c.benchmark_group("lemma22-verify");
    verify.sample_size(10);
    for (b, ell) in [(2u32, 2u32), (3, 2)] {
        let h = HGraph::build(GadgetParams::new(b, ell).expect("params"));
        verify.bench_with_input(
            BenchmarkId::from_parameter(format!("{b}-{ell}")),
            &h,
            |bch, h| bch.iter(|| check_all_pairs(h).len()),
        );
    }
    verify.finish();

    let mut label = c.benchmark_group("gadget-pll");
    label.sample_size(10);
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let h = HGraph::build(GadgetParams::new(b, ell).expect("params"));
        label.bench_with_input(
            BenchmarkId::from_parameter(format!("{b}-{ell}")),
            &h,
            |bch, h| bch.iter(|| PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling()),
        );
    }
    label.finish();
}

criterion_group!(benches, bench_lowerbound);
criterion_main!(benches);
