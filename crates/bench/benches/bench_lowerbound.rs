//! T2.1 / T1.1 / L2.2 — gadget construction, Lemma 2.2 verification and
//! the PLL hub-size measurement on the lower-bound family.

use hl_bench::timing::bench;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_lowerbound::midpoint::check_all_pairs;
use hl_lowerbound::{GGraph, GadgetParams, HGraph};

fn main() {
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let p = GadgetParams::new(b, ell).expect("params");
        bench("gadget-build", &format!("H/{b}-{ell}"), || HGraph::build(p));
    }
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2)] {
        let p = GadgetParams::new(b, ell).expect("params");
        bench("gadget-build", &format!("G/{b}-{ell}"), || GGraph::build(p));
    }

    for (b, ell) in [(2u32, 2u32), (3, 2)] {
        let h = HGraph::build(GadgetParams::new(b, ell).expect("params"));
        bench("lemma22-verify", &format!("{b}-{ell}"), || {
            check_all_pairs(&h).len()
        });
    }

    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let h = HGraph::build(GadgetParams::new(b, ell).expect("params"));
        bench("gadget-pll", &format!("{b}-{ell}"), || {
            PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling()
        });
    }
}
