//! RS — Behrend / greedy progression-free set construction and
//! Ruzsa–Szemerédi graph building + induced-matching verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_rs::induced::is_induced_matching_partition;
use hl_rs::{behrend_set, greedy_ap_free_set, RsGraph};

fn bench_rs(c: &mut Criterion) {
    let mut sets = c.benchmark_group("ap-free-sets");
    sets.sample_size(10);
    for n in [1_000u64, 10_000] {
        sets.bench_with_input(BenchmarkId::new("behrend", n), &n, |b, &n| {
            b.iter(|| behrend_set(n).len())
        });
        sets.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, &n| {
            b.iter(|| greedy_ap_free_set(n).len())
        });
    }
    sets.finish();

    let mut graphs = c.benchmark_group("rs-graphs");
    graphs.sample_size(10);
    for target in [200usize, 1_000] {
        graphs.bench_with_input(BenchmarkId::new("build", target), &target, |b, &t| {
            b.iter(|| RsGraph::behrend(t).graph().num_edges())
        });
    }
    let rs = RsGraph::behrend(400);
    graphs.bench_function("verify-induced-partition", |b| {
        b.iter(|| is_induced_matching_partition(rs.graph(), rs.matchings()))
    });
    graphs.finish();
}

criterion_group!(benches, bench_rs);
criterion_main!(benches);
