//! RS — Behrend / greedy progression-free set construction and
//! Ruzsa–Szemerédi graph building + induced-matching verification.

use hl_bench::timing::bench;
use hl_rs::induced::is_induced_matching_partition;
use hl_rs::{behrend_set, greedy_ap_free_set, RsGraph};

fn main() {
    for n in [1_000u64, 10_000] {
        bench("ap-free-sets", &format!("behrend/{n}"), || {
            behrend_set(n).len()
        });
        bench("ap-free-sets", &format!("greedy/{n}"), || {
            greedy_ap_free_set(n).len()
        });
    }

    for target in [200usize, 1_000] {
        bench("rs-graphs", &format!("build/{target}"), || {
            RsGraph::behrend(target).graph().num_edges()
        });
    }
    let rs = RsGraph::behrend(400);
    bench("rs-graphs", "verify-induced-partition", || {
        is_induced_matching_partition(rs.graph(), rs.matchings())
    });
}
