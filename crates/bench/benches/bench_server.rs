//! Serving layer: store encode/parse cost, store-vs-decoded query cost,
//! and engine batch throughput at 1 vs 4 workers.

use hl_bench::timing::{bench, black_box};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, NodeId};
use hl_server::engine::SMALL_BATCH_INLINE;
use hl_server::{LabelStore, QueryEngine};

fn main() {
    let g = generators::connected_gnm(2_000, 3_000, 9);
    let n = g.num_nodes();
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();

    let store = LabelStore::from_labeling(&hl);
    bench("server-store", "encode", || {
        LabelStore::from_labeling(&hl).blob_len()
    });
    let mut serialized = Vec::new();
    store.write_to(&mut serialized).expect("serialize");
    bench("server-store", "parse-validate", || {
        LabelStore::parse(&serialized).expect("parse").num_nodes()
    });
    bench("server-store", "decode-all", || {
        store.to_labeling().expect("decode").num_nodes()
    });
    bench("server-store", "decode-all-flat", || {
        store.to_flat().expect("decode").num_entries()
    });

    let mut rng = Xorshift64::seed_from_u64(3);
    let pairs: Vec<(NodeId, NodeId)> = (0..4_096)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();

    // Per-query cost: nested in-memory join vs flat CSR arena (what the
    // engine actually serves from) vs decode-on-the-fly from the store.
    bench("server-query", "decoded-labeling", || {
        let mut acc = 0u64;
        for &(u, v) in pairs.iter().take(256) {
            acc = acc.wrapping_add(hl.query(u, v));
        }
        acc
    });
    let flat = store.to_flat().expect("flat decode");
    bench("server-query", "flat-arena", || {
        let mut acc = 0u64;
        for &(u, v) in pairs.iter().take(256) {
            acc = acc.wrapping_add(flat.query(u, v));
        }
        acc
    });
    bench("server-query", "store-lazy-decode", || {
        let mut acc = 0u64;
        for &(u, v) in pairs.iter().take(256) {
            acc = acc.wrapping_add(store.query(u, v).expect("query"));
        }
        acc
    });

    // The engine converts to the flat arena at construction, so both
    // worker counts below measure the flat serving path.
    for workers in [1usize, 4] {
        let engine = QueryEngine::new(hl.clone(), workers).unwrap();
        bench("server-batch", &format!("{workers}-workers"), || {
            black_box(engine.query_batch(&pairs).expect("batch").len())
        });
    }

    // Small batches: at or below SMALL_BATCH_INLINE the engine answers on
    // the calling thread; one past the threshold it pays the worker-pool
    // handoff. Per-pair cost should drop sharply for the inline sizes.
    let engine = QueryEngine::new(hl.clone(), 4).unwrap();
    for batch in [1usize, SMALL_BATCH_INLINE, SMALL_BATCH_INLINE + 1, 64] {
        let small = &pairs[..batch];
        bench("server-small-batch", &format!("{batch}-pairs"), || {
            black_box(engine.query_batch(small).expect("batch").len())
        });
    }
}
