//! Q — query latency of hub-label merge-joins across graph families and
//! constructions (the tradeoff discussion of §1.1 / the distance-oracle
//! motivation in the introduction).

use hl_bench::timing::bench;
use hl_bench::{family_graph, Family};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_graph::NodeId;

fn main() {
    for family in [Family::RandomTree, Family::Grid, Family::Degree3Expander] {
        let g = family_graph(family, 400, 11);
        let n = g.num_nodes() as u64;
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let (rt, _) =
            random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 2))
                .expect("random threshold");
        let queries: Vec<(NodeId, NodeId)> = (0..1024u64)
            .map(|i| (((i * 37) % n) as NodeId, ((i * 613) % n) as NodeId))
            .collect();
        bench("query", &format!("pll/{}", family.name()), || {
            let mut acc = 0u64;
            for &(u, v) in &queries {
                acc = acc.wrapping_add(pll.query(u, v));
            }
            acc
        });
        bench("query", &format!("rand-thresh/{}", family.name()), || {
            let mut acc = 0u64;
            for &(u, v) in &queries {
                acc = acc.wrapping_add(rt.query(u, v));
            }
            acc
        });
    }
}
