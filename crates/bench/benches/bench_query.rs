//! Q — query latency of hub-label merge-joins across graph families and
//! constructions (the tradeoff discussion of §1.1 / the distance-oracle
//! motivation in the introduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_bench::{family_graph, Family};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_graph::NodeId;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    for family in [Family::RandomTree, Family::Grid, Family::Degree3Expander] {
        let g = family_graph(family, 400, 11);
        let n = g.num_nodes() as u64;
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let (rt, _) =
            random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 2))
                .expect("random threshold");
        let queries: Vec<(NodeId, NodeId)> = (0..1024u64)
            .map(|i| (((i * 37) % n) as NodeId, ((i * 613) % n) as NodeId))
            .collect();
        group.bench_with_input(BenchmarkId::new("pll", family.name()), &queries, |b, qs| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(u, v) in qs {
                    acc = acc.wrapping_add(pll.query(u, v));
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("rand-thresh", family.name()),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &(u, v) in qs {
                        acc = acc.wrapping_add(rt.query(u, v));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
