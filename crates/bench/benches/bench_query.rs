//! Q — query latency of hub-label merge-joins across graph families and
//! constructions (the tradeoff discussion of §1.1 / the distance-oracle
//! motivation in the introduction), plus a flat-vs-nested representation
//! head-to-head on the serving-scale gnm graph.

use hl_bench::timing::bench;
use hl_bench::{family_graph, Family};
use hl_core::label::{merge_join, merge_join_branchy};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::{freq, CompactLabeling, FlatLabeling};
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, NodeId};

fn main() {
    for family in [Family::RandomTree, Family::Grid, Family::Degree3Expander] {
        let g = family_graph(family, 400, 11);
        let n = g.num_nodes() as u64;
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let (rt, _) =
            random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 2))
                .expect("random threshold");
        let queries: Vec<(NodeId, NodeId)> = (0..1024u64)
            .map(|i| (((i * 37) % n) as NodeId, ((i * 613) % n) as NodeId))
            .collect();
        bench("query", &format!("pll/{}", family.name()), || {
            let mut acc = 0u64;
            for &(u, v) in &queries {
                acc = acc.wrapping_add(pll.query(u, v));
            }
            acc
        });
        bench("query", &format!("rand-thresh/{}", family.name()), || {
            let mut acc = 0u64;
            for &(u, v) in &queries {
                acc = acc.wrapping_add(rt.query(u, v));
            }
            acc
        });
    }

    // Flat CSR arena vs nested per-vertex labels: the *same* PLL labeling
    // in both representations, answering the *same* query stream, on the
    // 12k-node gnm graph used by the Serving section of EXPERIMENTS.md.
    let g = generators::connected_gnm(12_000, 18_000, 1);
    let n = g.num_nodes();
    let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let flat = FlatLabeling::from_labeling(&nested);
    let mut rng = Xorshift64::seed_from_u64(17);
    let stream: Vec<(NodeId, NodeId)> = (0..4096)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();

    // Single-query cost: one pair per iteration, rotating through the
    // stream so neither representation benefits from a hot repeated pair.
    let mut i = 0usize;
    bench("query-repr", "gnm12k/nested-single", || {
        let (u, v) = stream[i % stream.len()];
        i += 1;
        nested.query(u, v)
    });
    let mut i = 0usize;
    bench("query-repr", "gnm12k/flat-single", || {
        let (u, v) = stream[i % stream.len()];
        i += 1;
        flat.query(u, v)
    });

    // Batch cost: 1024 pairs per iteration, where the arena's contiguity
    // should pay off against per-vertex pointer chasing.
    bench("query-repr", "gnm12k/nested-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(nested.query(u, v));
        }
        acc
    });
    bench("query-repr", "gnm12k/flat-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(flat.query(u, v));
        }
        acc
    });

    // Flat CSR vs the compact arena (delta-coded hubs, narrow distance
    // lanes), plain and frequency-reordered — the same labeling, the same
    // stream, so the rows isolate decode cost against footprint.
    let compact = CompactLabeling::from_flat(&flat).expect("unit-weight distances fit u32");
    let (tuned_flat, _) = freq::reorder_by_hub_frequency(&flat);
    let tuned = CompactLabeling::from_flat(&tuned_flat).expect("reorder keeps distances");
    bench("query-repr", "gnm12k/compact-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(compact.query(u, v));
        }
        acc
    });
    bench("query-repr", "gnm12k/compact-freq-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(tuned.query(u, v));
        }
        acc
    });

    // Merge-join kernel head-to-head on raw label slices: the shipping
    // branchless formulation against the branchy three-way-match
    // reference, over the same slice pairs.
    bench("merge-join", "gnm12k/branchy-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(merge_join_branchy(
                flat.hubs_of(u),
                flat.dists_of(u),
                flat.hubs_of(v),
                flat.dists_of(v),
            ));
        }
        acc
    });
    bench("merge-join", "gnm12k/branchless-batch1024", || {
        let mut acc = 0u64;
        for &(u, v) in stream.iter().take(1024) {
            acc = acc.wrapping_add(merge_join(
                flat.hubs_of(u),
                flat.dists_of(u),
                flat.hubs_of(v),
                flat.dists_of(v),
            ));
        }
        acc
    });
}
