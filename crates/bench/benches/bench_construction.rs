//! Construction-time comparison of the four hub labeling algorithms on
//! sparse random graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hl_core::greedy::greedy_cover;
use hl_core::psl::psl_labeling;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{rs_labeling, RsParams};
use hl_graph::generators;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let g = generators::connected_gnm(n, n / 2, 5);
        group.bench_with_input(BenchmarkId::new("pll-degree", n), &g, |b, g| {
            b.iter(|| PrunedLandmarkLabeling::by_degree(g).into_labeling())
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &g, |b, g| {
            b.iter(|| greedy_cover(g).expect("greedy"))
        });
        group.bench_with_input(BenchmarkId::new("rand-thresh", n), &g, |b, g| {
            b.iter(|| {
                random_threshold_labeling(g, RandomThresholdParams::for_size(g.num_nodes(), 1))
                    .expect("random threshold")
            })
        });
        group.bench_with_input(BenchmarkId::new("rs-based", n), &g, |b, g| {
            b.iter(|| rs_labeling(g, RsParams { threshold: 3, seed: 1 }).expect("rs"))
        });
        group.bench_with_input(BenchmarkId::new("psl-4-threads", n), &g, |b, g| {
            b.iter(|| {
                psl_labeling(g, hl_core::order::by_degree(g), 4).expect("psl").total_hubs()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
