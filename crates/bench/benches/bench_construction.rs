//! Construction-time comparison of the four hub labeling algorithms on
//! sparse random graphs.

use hl_bench::timing::bench;
use hl_core::greedy::greedy_cover;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::psl::psl_labeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{rs_labeling, RsParams};
use hl_graph::generators;

fn main() {
    for n in [50usize, 100, 200] {
        let g = generators::connected_gnm(n, n / 2, 5);
        bench("construction", &format!("pll-degree/{n}"), || {
            PrunedLandmarkLabeling::by_degree(&g).into_labeling()
        });
        bench("construction", &format!("greedy/{n}"), || {
            greedy_cover(&g).expect("greedy")
        });
        bench("construction", &format!("rand-thresh/{n}"), || {
            random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 1))
                .expect("random threshold")
        });
        bench("construction", &format!("rs-based/{n}"), || {
            rs_labeling(
                &g,
                RsParams {
                    threshold: 3,
                    seed: 1,
                },
            )
            .expect("rs")
        });
        bench("construction", &format!("psl-4-threads/{n}"), || {
            psl_labeling(&g, hl_core::order::by_degree(&g), 4)
                .expect("psl")
                .total_hubs()
        });
    }
}
