//! End-to-end tests of the `hubtool` binary (spawned as a subprocess).

use std::process::Command;

fn hubtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hubtool"))
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hubtool-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_build_verify_query_pipeline() {
    let graph = tempfile("g.txt");
    let labels = tempfile("l.txt");

    let out = hubtool()
        .args(["gen", "grid", "49", "1", graph.to_str().unwrap()])
        .output()
        .expect("spawn hubtool gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hubtool()
        .args([
            "build",
            graph.to_str().unwrap(),
            labels.to_str().unwrap(),
            "pll",
        ])
        .output()
        .expect("spawn hubtool build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hubtool()
        .args(["verify", graph.to_str().unwrap(), labels.to_str().unwrap()])
        .output()
        .expect("spawn hubtool verify");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("exact"));

    let out = hubtool()
        .args(["stats", labels.to_str().unwrap()])
        .output()
        .expect("spawn hubtool stats");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("avg="));

    let out = hubtool()
        .args(["query", labels.to_str().unwrap(), "0", "48"])
        .output()
        .expect("spawn hubtool query");
    assert!(out.status.success());
    // 7x7 grid: corner to corner = 12.
    assert!(String::from_utf8_lossy(&out.stdout).contains("= 12"));

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn verify_rejects_mismatched_labels() {
    let graph_a = tempfile("ga.txt");
    let graph_b = tempfile("gb.txt");
    let labels_b = tempfile("lb.txt");
    assert!(hubtool()
        .args(["gen", "path", "10", "1", graph_a.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(hubtool()
        .args(["gen", "cycle", "10", "1", graph_b.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(hubtool()
        .args([
            "build",
            graph_b.to_str().unwrap(),
            labels_b.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    // Labels of the cycle are NOT an exact cover of the path.
    let out = hubtool()
        .args([
            "verify",
            graph_a.to_str().unwrap(),
            labels_b.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "mismatched labeling must fail verification"
    );

    let _ = std::fs::remove_file(graph_a);
    let _ = std::fs::remove_file(graph_b);
    let _ = std::fs::remove_file(labels_b);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = hubtool().output().expect("spawn hubtool");
    assert!(!out.status.success());
    let out = hubtool()
        .args(["gen", "nosuchfamily", "10", "1", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = hubtool()
        .args(["query", "/nonexistent/file", "0", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn all_build_algorithms_roundtrip() {
    let graph = tempfile("galgo.txt");
    let labels = tempfile("lalgo.txt");
    assert!(hubtool()
        .args(["gen", "tree", "40", "3", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for algo in [
        "pll",
        "pll-random",
        "pll-betweenness",
        "psl",
        "greedy",
        "rs",
        "random-threshold",
        "centroid",
        "separator",
    ] {
        let out = hubtool()
            .args([
                "build",
                graph.to_str().unwrap(),
                labels.to_str().unwrap(),
                algo,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let out = hubtool()
            .args(["verify", graph.to_str().unwrap(), labels.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo} verify failed");
    }
    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}
