//! The graph-family zoo the experiments sweep over: sparse families with
//! very different hub-labeling behaviour.

use hl_graph::{generators, Graph};

/// A named sparse graph family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Path graph — trivial labels.
    Path,
    /// Cycle.
    Cycle,
    /// Random recursive tree — `O(log n)` labels.
    RandomTree,
    /// Near-square 2D grid — `Õ(√n)` labels.
    Grid,
    /// Connected sparse `G(n, 1.5n)`.
    SparseRandom,
    /// Union of three random perfect matchings (max degree 3) — sparse
    /// expander-like, the hard regime.
    Degree3Expander,
    /// Preferential attachment — heavy-tailed "real-world" shape.
    PowerLaw,
}

impl Family {
    /// All families in sweep order.
    pub fn all() -> [Family; 7] {
        [
            Family::Path,
            Family::Cycle,
            Family::RandomTree,
            Family::Grid,
            Family::SparseRandom,
            Family::Degree3Expander,
            Family::PowerLaw,
        ]
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::RandomTree => "tree",
            Family::Grid => "grid",
            Family::SparseRandom => "gnm",
            Family::Degree3Expander => "deg3-exp",
            Family::PowerLaw => "powerlaw",
        }
    }
}

/// Builds a graph of roughly `n` vertices from the family (deterministic
/// for a given seed).
pub fn family_graph(family: Family, n: usize, seed: u64) -> Graph {
    match family {
        Family::Path => generators::path(n),
        Family::Cycle => generators::cycle(n.max(3)),
        Family::RandomTree => generators::random_tree(n, seed),
        Family::Grid => {
            let side = (n as f64).sqrt().round() as usize;
            generators::grid(side.max(2), side.max(2))
        }
        Family::SparseRandom => {
            let extra = n / 2;
            let max_extra = n * (n - 1) / 2 - (n - 1);
            generators::connected_gnm(n.max(2), extra.min(max_extra), seed)
        }
        Family::Degree3Expander => generators::union_of_matchings(n + n % 2, 3, seed),
        Family::PowerLaw => generators::preferential_attachment(n.max(2), 2, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_build() {
        for f in Family::all() {
            let g = family_graph(f, 60, 7);
            assert!(g.num_nodes() >= 49, "{}", f.name());
            assert!(!f.name().is_empty());
        }
    }

    #[test]
    fn families_are_sparse() {
        for f in Family::all() {
            let g = family_graph(f, 100, 3);
            assert!(g.average_degree() <= 4.0, "{} too dense", f.name());
        }
    }
}
