//! Minimal std-only micro-benchmark harness.
//!
//! The workspace builds in offline environments with no access to
//! crates.io, so `criterion` is unavailable; the `benches/` targets use
//! this harness instead (`cargo bench` still runs them — each bench is a
//! plain `main` with `harness = false`).
//!
//! Methodology: warm up, then double the iteration count until the
//! measured wall time crosses a target window, and report mean ns/iter
//! over the final window. No statistics beyond the mean — these numbers
//! guide optimization, they are not publication-grade.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement window: long enough to amortize timer noise on fast
/// closures, short enough that a full bench suite stays interactive.
const TARGET: Duration = Duration::from_millis(100);

/// Hard cap on iterations so constant-time closures terminate quickly.
const MAX_ITERS: u64 = 1 << 22;

/// Times `f` and prints one `group/id  mean-ns/iter` line.
///
/// Returns the measured mean nanoseconds per iteration, so callers that
/// want to compare two variants programmatically can.
pub fn bench<R>(group: &str, id: &str, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..2 {
        black_box(f());
    }
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= TARGET || iters >= MAX_ITERS {
            break dt.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    let label = format!("{group}/{id}");
    println!("{label:<48} {per_iter:>14.1} ns/iter"); // lint:allow(no-print): stdout is the micro-benchmark harness's one reporting channel
    per_iter
}
