//! Minimal aligned plain-text tables for experiment output.

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["1", "10"]);
        t.row(vec!["100", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }
}
