//! `hubtool` — build, inspect, verify and query hub labelings from the
//! command line, over the plain-text graph/labeling formats of
//! `hl_graph::io` and `hl_core::io`.
//!
//! ```text
//! hubtool gen <family> <n> <seed> <graph-file>      generate a graph
//! hubtool build <graph-file> <labels-file> [algo]   construct a labeling
//! hubtool verify <graph-file> <labels-file>         check exactness
//! hubtool stats <labels-file>                       size statistics
//! hubtool query <labels-file> <u> <v>               answer from labels only
//! ```
//!
//! Algorithms: `pll` (default), `pll-random`, `pll-betweenness`, `psl`,
//! `greedy`, `rs`, `random-threshold`, `centroid`, `separator`.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use hl_bench::{family_graph, Family};
use hl_core::cover::verify_exact;
use hl_core::greedy::greedy_cover;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{rs_labeling, RsParams};
use hl_core::tree::centroid_labeling;
use hl_core::{HubLabeling, LabelingStats};
use hl_graph::Graph;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!("usage: hubtool gen|build|verify|stats|query ... (see --help in the docs)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hubtool: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    hl_graph::io::read_edge_list(BufReader::new(file)).map_err(|e| e.to_string())
}

fn load_labels(path: &str) -> Result<HubLabeling, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    hl_core::io::read_labeling(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let [family, n, seed, out] = args else {
        return Err("usage: hubtool gen <family> <n> <seed> <graph-file>".into());
    };
    let n: usize = n.parse().map_err(|_| "n must be an integer".to_string())?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| "seed must be an integer".to_string())?;
    let fam = Family::all()
        .into_iter()
        .find(|f| f.name() == family)
        .ok_or_else(|| {
            format!(
                "unknown family '{family}'; choose from: {}",
                Family::all().map(|f| f.name()).join(", ")
            )
        })?;
    let g = family_graph(fam, n, seed);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    hl_graph::io::write_edge_list(&g, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (graph_path, labels_path, algo) = match args {
        [g, l] => (g, l, "pll"),
        [g, l, a] => (g, l, a.as_str()),
        _ => return Err("usage: hubtool build <graph-file> <labels-file> [algo]".into()),
    };
    let g = load_graph(graph_path)?;
    let labeling = match algo {
        "pll" => PrunedLandmarkLabeling::by_degree(&g).into_labeling(),
        "pll-random" => PrunedLandmarkLabeling::by_random_order(&g, 1).into_labeling(),
        "pll-betweenness" => PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
            .map_err(|e| e.to_string())?
            .into_labeling(),
        "psl" => hl_core::psl::psl_labeling(&g, hl_core::order::by_degree(&g), 4)
            .map_err(|e| e.to_string())?,
        "separator" => hl_core::separator_labeling::separator_labeling(&g),
        "greedy" => greedy_cover(&g).map_err(|e| e.to_string())?,
        "rs" => {
            rs_labeling(&g, RsParams::for_size(g.num_nodes(), 1))
                .map_err(|e| e.to_string())?
                .0
        }
        "random-threshold" => {
            random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 1))
                .map_err(|e| e.to_string())?
                .0
        }
        "centroid" => centroid_labeling(&g).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let file =
        File::create(labels_path).map_err(|e| format!("cannot create {labels_path}: {e}"))?;
    hl_core::io::write_labeling(&labeling, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!("built {algo} labeling: {}", LabelingStats::of(&labeling));
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let [graph_path, labels_path] = args else {
        return Err("usage: hubtool verify <graph-file> <labels-file>".into());
    };
    let g = load_graph(graph_path)?;
    let labeling = load_labels(labels_path)?;
    if labeling.num_nodes() != g.num_nodes() {
        return Err(format!(
            "labeling covers {} vertices but graph has {}",
            labeling.num_nodes(),
            g.num_nodes()
        ));
    }
    let report = verify_exact(&g, &labeling).map_err(|e| e.to_string())?;
    println!(
        "checked {} pairs: {}",
        report.pairs_checked,
        if report.is_exact() {
            "exact".to_string()
        } else {
            format!(
                "{} violations (accuracy {:.4})",
                report.num_violations,
                report.accuracy()
            )
        }
    );
    if report.is_exact() {
        Ok(())
    } else {
        Err("labeling is not an exact cover".into())
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [labels_path] = args else {
        return Err("usage: hubtool stats <labels-file>".into());
    };
    let labeling = load_labels(labels_path)?;
    println!("{}", LabelingStats::of(&labeling));
    let bits = hl_labeling::SchemeStats::of(&hl_labeling::hub_scheme::encode_labeling(&labeling));
    println!(
        "encoded: avg {:.1} bits/label, max {} bits, total {} bits",
        bits.average_bits, bits.max_bits, bits.total_bits
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [labels_path, u, v] = args else {
        return Err("usage: hubtool query <labels-file> <u> <v>".into());
    };
    let labeling = load_labels(labels_path)?;
    let u: u32 = u.parse().map_err(|_| "u must be a vertex id".to_string())?;
    let v: u32 = v.parse().map_err(|_| "v must be a vertex id".to_string())?;
    let n = labeling.num_nodes() as u32;
    if u >= n || v >= n {
        return Err(format!("vertex out of range (labeling covers 0..{n})"));
    }
    let d = labeling.query(u, v);
    if d == hl_graph::INFINITY {
        println!("d({u}, {v}) = unreachable");
    } else {
        println!("d({u}, {v}) = {d}");
    }
    Ok(())
}
