//! Experiment table generator for the reproduction.
//!
//! Usage: `experiments [SUBCOMMAND]` (default: `all`). Subcommands:
//! `f1 l22 t21 t41 t14 t16 rs q ablation oracles corrected highway growth
//! encoding tradeoff` — plus `big` (large-instance stress, excluded from
//! `all`).
//! Each subcommand regenerates one experiment from DESIGN.md §3 and prints
//! an aligned table; EXPERIMENTS.md records the reference output.

use std::time::Instant;

use hl_bench::{family_graph, Family, Table};
use hl_core::cover::verify_exact;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{project_labeling, rs_labeling, RsParams};
use hl_core::tree::centroid_labeling;
use hl_graph::transform::reduce_degree;
use hl_graph::{generators, NodeId};
use hl_labeling::hub_scheme::encode_labeling;
use hl_labeling::SchemeStats;
use hl_lowerbound::accounting::{audit_g, audit_h};
use hl_lowerbound::midpoint::{check_all_pairs, figure1_check};
use hl_lowerbound::{GGraph, GadgetParams, HGraph};
use hl_sumindex::protocol::GraphProtocol;
use hl_sumindex::repr::Repr;
use hl_sumindex::SumIndexInstance;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "f1" => f1(),
        "l22" => l22(),
        "t21" => t21(),
        "t41" => t41(),
        "t14" => t14(),
        "t16" => t16(),
        "rs" => rs_tables(),
        "q" => query_tradeoff(),
        "ablation" => ablation(),
        "oracles" => oracles(),
        "corrected" => corrected(),
        "big" => big(),
        "highway" => highway(),
        "growth" => growth(),
        "encoding" => encoding(),
        "tradeoff" => tradeoff(),
        "all" => {
            f1();
            l22();
            t21();
            t41();
            t14();
            t16();
            rs_tables();
            query_tradeoff();
            ablation();
            oracles();
            corrected();
            highway();
            growth();
            encoding();
            tradeoff();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("usage: experiments [f1|l22|t21|t41|t14|t16|rs|q|ablation|oracles|corrected|all|big]  (big is excluded from all)");
            std::process::exit(2);
        }
    }
}

/// F1 — reproduce Figure 1: the blue unique shortest path in `H_{2,2}`.
fn f1() {
    println!("\n== F1: Figure 1 (H_{{b=2,l=2}}, blue vs red path) ==");
    let h = HGraph::build(GadgetParams::new(2, 2).expect("valid params"));
    let (blue, red) = figure1_check(&h);
    let mut t = Table::new(vec![
        "path",
        "endpoints",
        "length",
        "unique",
        "via midpoint",
    ]);
    t.row(vec![
        "blue".to_string(),
        "v0,(1,0) -> v4,(3,2)".to_string(),
        format!("{} (= 4A+4)", blue.distance),
        format!("{}", blue.path_count == 1),
        format!("{}", blue.through_midpoint),
    ]);
    t.row(vec![
        "red".to_string(),
        "detour".to_string(),
        format!("{red} (= 4A+8)"),
        "-".to_string(),
        "-".to_string(),
    ]);
    print!("{t}");
    println!("claims hold: {}", blue.holds() && red > blue.distance);
}

/// L2.2 — Lemma 2.2 exhaustively on a sweep of gadget sizes.
fn l22() {
    println!("\n== L2.2: unique shortest paths through midpoints ==");
    let mut t = Table::new(vec!["gadget", "n(H)", "even pairs", "failures"]);
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2), (2, 2), (3, 2), (2, 3)] {
        let p = GadgetParams::new(b, ell).expect("valid params");
        let h = HGraph::build(p);
        let pairs = h.even_pairs().count();
        let failures = check_all_pairs(&h).len();
        t.row(vec![
            p.to_string(),
            h.graph().num_nodes().to_string(),
            pairs.to_string(),
            failures.to_string(),
        ]);
    }
    print!("{t}");
}

/// T2.1 / T1.1 — the lower-bound family: construction invariants, the
/// counting audit, and measured hub sizes vs the closed-form bound, with
/// easy families as contrast.
fn t21() {
    println!("\n== T2.1: gadget invariants + counting audit (H family) ==");
    let mut t = Table::new(vec![
        "gadget",
        "n(H)",
        "triples",
        "charged",
        "PLL avg |S|",
        "bound avg",
        "exact",
    ]);
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2), (2, 2), (3, 2), (2, 3)] {
        let p = GadgetParams::new(b, ell).expect("valid params");
        let h = HGraph::build(p);
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        let exact = verify_exact(h.graph(), &hl).expect("verify").is_exact();
        let report = audit_h(&h, &hl);
        t.row(vec![
            p.to_string(),
            h.graph().num_nodes().to_string(),
            report.triples.to_string(),
            report.charged.to_string(),
            format!("{:.2}", hl.average_hubs()),
            format!("{:.3}", p.h_avg_hub_lower_bound()),
            exact.to_string(),
        ]);
    }
    print!("{t}");

    println!("\n== T2.1(G): degree-3 expansion invariants ==");
    let mut t = Table::new(vec![
        "gadget",
        "n(G)",
        "max deg",
        "charged/triples",
        "exact",
    ]);
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2)] {
        let p = GadgetParams::new(b, ell).expect("valid params");
        let h = HGraph::build(p);
        let g = GGraph::from_hgraph(&h);
        let hl = PrunedLandmarkLabeling::by_degree(g.graph()).into_labeling();
        let exact = verify_exact(g.graph(), &hl).expect("verify").is_exact();
        let report = audit_g(&h, &g, &hl);
        t.row(vec![
            format!("G({b},{ell})"),
            g.graph().num_nodes().to_string(),
            g.graph().max_degree().to_string(),
            format!("{}/{}", report.charged, report.triples),
            exact.to_string(),
        ]);
    }
    print!("{t}");

    println!("\n== T1.1: hub-size growth, gadget vs easy families (PLL avg |S|) ==");
    let mut t = Table::new(vec!["graph", "n", "avg |S|", "avg |S| / n"]);
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let p = GadgetParams::new(b, ell).expect("valid params");
        let h = HGraph::build(p);
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        let n = h.graph().num_nodes();
        t.row(vec![
            p.to_string(),
            n.to_string(),
            format!("{:.2}", hl.average_hubs()),
            format!("{:.4}", hl.average_hubs() / n as f64),
        ]);
    }
    for family in [Family::RandomTree, Family::Grid] {
        for n in [320usize, 448] {
            let g = family_graph(family, n, 5);
            let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
            t.row(vec![
                family.name().to_string(),
                g.num_nodes().to_string(),
                format!("{:.2}", hl.average_hubs()),
                format!("{:.4}", hl.average_hubs() / g.num_nodes() as f64),
            ]);
        }
    }
    print!("{t}");
}

/// T4.1 — the RS-based construction: size breakdown over `D`, against
/// PLL and random-threshold baselines.
fn t41() {
    println!("\n== T4.1: RS-based construction, size breakdown over D ==");
    let mut t = Table::new(vec![
        "graph",
        "n",
        "D",
        "|S|",
        "sumQ",
        "sumR",
        "sumF",
        "avg |H_v|",
        "exact",
    ]);
    for family in [Family::Degree3Expander, Family::SparseRandom, Family::Grid] {
        let g = family_graph(family, 150, 21);
        for d in [2u64, 3, 4, 6] {
            let (hl, bd) = rs_labeling(
                &g,
                RsParams {
                    threshold: d,
                    seed: 77,
                },
            )
            .expect("rs");
            let exact = verify_exact(&g, &hl).expect("verify").is_exact();
            t.row(vec![
                family.name().to_string(),
                g.num_nodes().to_string(),
                d.to_string(),
                bd.global_hubs.to_string(),
                bd.fallback_q.to_string(),
                bd.fallback_r.to_string(),
                bd.cover_f.to_string(),
                format!("{:.2}", hl.average_hubs()),
                exact.to_string(),
            ]);
        }
    }
    print!("{t}");

    println!("\n== T4.1(baselines): average hub size by construction ==");
    let mut t = Table::new(vec!["graph", "n", "PLL", "rand-thresh", "RS-based(D*)"]);
    for family in [
        Family::Path,
        Family::RandomTree,
        Family::Grid,
        Family::Degree3Expander,
    ] {
        let g = family_graph(family, 150, 22);
        let n = g.num_nodes();
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let (rt, _) = random_threshold_labeling(&g, RandomThresholdParams::for_size(n, 1))
            .expect("random threshold");
        let (rs, _) = rs_labeling(&g, RsParams::for_size(n, 1)).expect("rs");
        t.row(vec![
            family.name().to_string(),
            n.to_string(),
            format!("{:.2}", pll.average_hubs()),
            format!("{:.2}", rt.average_hubs()),
            format!("{:.2}", rs.average_hubs()),
        ]);
    }
    print!("{t}");
}

/// T1.4 — constant *average* degree via degree reduction.
fn t14() {
    println!("\n== T1.4: degree reduction pipeline on skewed-degree graphs ==");
    let mut t = Table::new(vec![
        "n",
        "hub deg",
        "n(reduced)",
        "max deg after",
        "avg |H_v|",
        "exact",
    ]);
    for (n, hub) in [(120usize, 50usize), (160, 90), (200, 120)] {
        let g = generators::skewed_sparse(n, hub, 9);
        let red = reduce_degree(&g, 4).expect("reduce");
        let (hl_red, _) = rs_labeling(
            &red.graph,
            RsParams {
                threshold: 3,
                seed: 5,
            },
        )
        .expect("rs");
        let hl = project_labeling(&hl_red, &red.representative, &red.origin);
        let exact = verify_exact(&g, &hl).expect("verify").is_exact();
        t.row(vec![
            n.to_string(),
            g.degree(0).to_string(),
            red.graph.num_nodes().to_string(),
            red.graph.max_degree().to_string(),
            format!("{:.2}", hl.average_hubs()),
            exact.to_string(),
        ]);
    }
    print!("{t}");
}

/// T1.6 — the Sum-Index protocol: correctness sweep + message-size table.
fn t16() {
    println!("\n== T1.6: Sum-Index via distance labels of H'(b,l) ==");
    let mut t = Table::new(vec![
        "gadget",
        "m",
        "graph n",
        "correct",
        "max msg bits",
        "avg msg bits",
        "naive bits",
        "sqrt(m)",
    ]);
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3), (4, 2)] {
        let params = GadgetParams::new(b, ell).expect("valid params");
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 1234);
        let protocol = GraphProtocol::new(params, &instance).expect("protocol");
        let mut correct = true;
        for a in 0..m as u64 {
            for bb in 0..m as u64 {
                correct &= protocol.run(a, bb) == instance.answer(a as usize, bb as usize);
            }
        }
        let costs = protocol.costs();
        t.row(vec![
            params.to_string(),
            m.to_string(),
            costs.graph_nodes.to_string(),
            correct.to_string(),
            costs.max_message_bits.to_string(),
            format!("{:.1}", costs.avg_message_bits),
            costs.naive_bits.to_string(),
            format!("{:.1}", costs.sqrt_m),
        ]);
    }
    print!("{t}");

    println!("\n== T1.6(G'): on the true max-degree-3 graph ==");
    let mut t = Table::new(vec![
        "gadget",
        "m",
        "n(G')",
        "max deg",
        "correct",
        "avg label bits",
        "max label bits",
    ]);
    for (b, ell) in [(2u32, 2u32), (3, 2)] {
        let params = GadgetParams::new(b, ell).expect("valid params");
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 4321);
        let protocol =
            hl_sumindex::g_protocol::GPrimeProtocol::new(params, &instance).expect("protocol");
        let mut correct = true;
        for a in 0..m as u64 {
            for bb in 0..m as u64 {
                correct &= protocol.run(a, bb) == instance.answer(a as usize, bb as usize);
            }
        }
        let stats = protocol.label_stats();
        t.row(vec![
            format!("G'({b},{ell})"),
            m.to_string(),
            protocol.graph_nodes().to_string(),
            protocol.max_degree().to_string(),
            correct.to_string(),
            format!("{:.0}", stats.average_bits),
            stats.max_bits.to_string(),
        ]);
    }
    print!("{t}");
}

/// RS — Behrend/greedy densities and RS-graph witnesses.
fn rs_tables() {
    println!("\n== RS: progression-free set densities ==");
    let mut t = Table::new(vec!["n", "greedy |B|", "behrend |B|", "n/|B|"]);
    for n in [100u64, 1_000, 10_000, 100_000] {
        let d = hl_rs::behrend::density(n);
        t.row(vec![
            n.to_string(),
            d.greedy.to_string(),
            d.behrend.to_string(),
            format!("{:.1}", d.gap_factor),
        ]);
    }
    print!("{t}");

    println!("\n== RS: Ruzsa-Szemeredi graph witnesses (RS(n) <= n^2/m) ==");
    let mut t = Table::new(vec!["n", "edges", "matchings", "RS upper", "2^sqrt(log n)"]);
    for target in [100usize, 500, 2_000, 10_000] {
        let w = hl_rs::rs_function::witness(target);
        t.row(vec![
            w.n.to_string(),
            w.m.to_string(),
            w.matchings.to_string(),
            format!("{:.1}", w.rs_upper),
            format!("{:.1}", w.rs_heuristic),
        ]);
    }
    print!("{t}");
}

/// Q — the label-size / query-time tradeoff across constructions.
fn query_tradeoff() {
    println!("\n== Q: label size vs query latency (10k queries each) ==");
    let mut t = Table::new(vec!["graph", "scheme", "avg hubs", "avg bits", "ns/query"]);
    for family in [Family::RandomTree, Family::Grid, Family::Degree3Expander] {
        let g = family_graph(family, 150, 33);
        let n = g.num_nodes() as u64;
        let queries: Vec<(NodeId, NodeId)> = (0..10_000u64)
            .map(|i| (((i * 37) % n) as NodeId, ((i * 101) % n) as NodeId))
            .collect();
        let mut schemes: Vec<(&str, hl_core::HubLabeling)> = vec![
            ("pll", PrunedLandmarkLabeling::by_degree(&g).into_labeling()),
            (
                "rand-thresh",
                random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 3))
                    .expect("random threshold")
                    .0,
            ),
            (
                "rs-based",
                rs_labeling(&g, RsParams::for_size(g.num_nodes(), 3))
                    .expect("rs")
                    .0,
            ),
        ];
        if family == Family::RandomTree {
            schemes.push(("centroid", centroid_labeling(&g).expect("tree")));
        }
        for (name, hl) in schemes {
            let bits = SchemeStats::of(&encode_labeling(&hl));
            let start = Instant::now();
            let mut sink = 0u64;
            for &(a, b) in &queries {
                sink = sink.wrapping_add(hl.query(a, b));
            }
            let elapsed = start.elapsed().as_nanos() as f64 / queries.len() as f64;
            std::hint::black_box(sink);
            t.row(vec![
                family.name().to_string(),
                name.to_string(),
                format!("{:.2}", hl.average_hubs()),
                format!("{:.1}", bits.average_bits),
                format!("{elapsed:.0}"),
            ]);
        }
    }
    print!("{t}");
}

/// Ablations: PLL order choice, canonical HHL vs PLL, post-hoc
/// minimization, and the protocol's labeling-scheme choice.
fn ablation() {
    use hl_core::hierarchical::canonical_hhl;
    use hl_core::minimize::minimize_labeling;
    use hl_core::order;
    use hl_labeling::full_vector::FullVectorScheme;
    use hl_labeling::hub_scheme::HubPllScheme;
    use hl_sumindex::scheme_protocol::SchemeProtocol;

    println!("\n== Ablation A: PLL vertex order (total hubs) ==");
    let mut t = Table::new(vec![
        "graph",
        "n",
        "degree",
        "random",
        "betweenness",
        "closeness",
    ]);
    for family in [Family::RandomTree, Family::Grid, Family::Degree3Expander] {
        let g = family_graph(family, 196, 3);
        let deg = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let rnd = PrunedLandmarkLabeling::by_random_order(&g, 1).into_labeling();
        let btw = PrunedLandmarkLabeling::by_betweenness(&g, 16, 1)
            .expect("betweenness order")
            .into_labeling();
        let clo = PrunedLandmarkLabeling::with_order(
            &g,
            order::by_closeness(&g).expect("closeness order"),
        )
        .into_labeling();
        t.row(vec![
            family.name().to_string(),
            g.num_nodes().to_string(),
            deg.total_hubs().to_string(),
            rnd.total_hubs().to_string(),
            btw.total_hubs().to_string(),
            clo.total_hubs().to_string(),
        ]);
    }
    print!("{t}");

    println!("\n== Ablation B: canonical HHL vs PLL (same order) + minimization ==");
    let mut t = Table::new(vec!["graph", "n", "canonical HHL", "PLL", "PLL minimized"]);
    for family in [Family::RandomTree, Family::SparseRandom] {
        let g = family_graph(family, 60, 5);
        let ord = order::by_degree(&g);
        let hhl = canonical_hhl(&g, &ord).expect("hhl");
        let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        let (_, report) = minimize_labeling(&g, &pll).expect("minimize");
        t.row(vec![
            family.name().to_string(),
            g.num_nodes().to_string(),
            hhl.total_hubs().to_string(),
            pll.total_hubs().to_string(),
            report.after.to_string(),
        ]);
    }
    print!("{t}");

    println!("\n== Ablation C: Sum-Index message size by labeling scheme ==");
    let mut t = Table::new(vec![
        "gadget",
        "m",
        "scheme",
        "avg label bits",
        "max label bits",
        "correct",
    ]);
    for (b, ell) in [(2u32, 2u32), (3, 2)] {
        let params = GadgetParams::new(b, ell).expect("params");
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 7);
        let mut report = |proto: &SchemeProtocol<dyn hl_labeling::DistanceLabelingScheme>| {
            let mut correct = true;
            for a in 0..m as u64 {
                for bb in 0..m as u64 {
                    correct &= proto.run(a, bb).0 == instance.answer(a as usize, bb as usize);
                }
            }
            let stats = proto.label_stats();
            t.row(vec![
                params.to_string(),
                m.to_string(),
                proto.scheme_name().to_string(),
                format!("{:.0}", stats.average_bits),
                stats.max_bits.to_string(),
                correct.to_string(),
            ]);
        };
        let hub_scheme: &dyn hl_labeling::DistanceLabelingScheme = &HubPllScheme;
        let full_scheme: &dyn hl_labeling::DistanceLabelingScheme = &FullVectorScheme;
        report(&SchemeProtocol::new(params, &instance, hub_scheme).expect("protocol"));
        report(&SchemeProtocol::new(params, &instance, full_scheme).expect("protocol"));
    }
    print!("{t}");
}

/// Oracles — the space/time tradeoff of §1: latency and space of five
/// exact point-to-point methods on one weighted instance.
fn oracles() {
    use hl_oracles::oracle::{BidirectionalOracle, DijkstraOracle, DistanceOracle, HubLabelOracle};
    use hl_oracles::{AltOracle, ContractionHierarchy};

    println!("\n== Oracles: exact point-to-point methods, 20x20 weighted grid ==");
    let g = generators::weighted_grid(20, 20, 13);
    let n = g.num_nodes() as u64;
    let queries: Vec<(NodeId, NodeId)> = (0..400u64)
        .map(|i| (((i * 97) % n) as NodeId, ((i * 263) % n) as NodeId))
        .collect();

    let dij = DijkstraOracle { graph: &g };
    let bi = BidirectionalOracle { graph: &g };
    let alt = AltOracle::with_farthest_landmarks(&g, 8);
    let ch = ContractionHierarchy::build(&g);
    let labeling = PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
        .expect("betweenness order")
        .into_labeling();
    let hub_space = labeling.total_hubs() * 12;
    let hub = HubLabelOracle { labeling };
    let alt_space = alt.landmarks().memory_bytes();

    let mut t = Table::new(vec!["oracle", "space (B)", "us/query", "agrees"]);
    let reference: Vec<u64> = queries.iter().map(|&(u, v)| dij.distance(u, v)).collect();
    let mut bench = |oracle: &dyn DistanceOracle, space: usize| {
        let start = Instant::now();
        let mut ok = true;
        for (i, &(u, v)) in queries.iter().enumerate() {
            ok &= oracle.distance(u, v) == reference[i];
        }
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        t.row(vec![
            oracle.name().to_string(),
            space.to_string(),
            format!("{us:.1}"),
            ok.to_string(),
        ]);
    };
    bench(&dij, 0);
    bench(&bi, 0);
    bench(&alt, alt_space);
    bench(&ch, ch.num_shortcuts() * 12);
    bench(&hub, hub_space);
    print!("{t}");
    println!("(space: auxiliary index bytes beyond the graph; 0 = none)");
}

/// Corrected — the §1.1 architecture: approximate hubs + correction
/// tables, swept over the pruning slack.
fn corrected() {
    use hl_core::corrected::CorrectedLabeling;

    println!("\n== Corrected: approximate hubs + correction tables (slack sweep) ==");
    let mut t = Table::new(vec!["graph", "n", "slack", "hubs", "corrections", "exact"]);
    for family in [Family::Grid, Family::PowerLaw, Family::SparseRandom] {
        let g = family_graph(family, 150, 31);
        for slack in [0u64, 1, 2, 4] {
            let c = CorrectedLabeling::build(&g, slack, 0).expect("corrected");
            let (hubs, corr) = c.size_breakdown();
            // Spot verify exactness on a sample.
            let truth = hl_graph::apsp::DistanceMatrix::compute(&g).expect("apsp");
            let mut exact = true;
            for u in (0..g.num_nodes() as NodeId).step_by(7) {
                for v in 0..g.num_nodes() as NodeId {
                    exact &= c.query(u, v) == truth.distance(u, v);
                }
            }
            t.row(vec![
                family.name().to_string(),
                g.num_nodes().to_string(),
                slack.to_string(),
                hubs.to_string(),
                corr.to_string(),
                exact.to_string(),
            ]);
        }
    }
    print!("{t}");
}

/// Big — large-instance stress runs with sampled verification (not part of
/// `all`; takes a minute or two).
fn big() {
    use hl_lowerbound::sampling::{audit_sampled, check_sampled_pairs};

    println!("\n== BIG: H(3,3) — sampled Lemma 2.2 + sampled audit ==");
    let p = GadgetParams::new(3, 3).expect("valid params");
    let h = HGraph::build(p);
    println!(
        "H(3,3): {} vertices, {} edges",
        h.graph().num_nodes(),
        h.graph().num_edges()
    );
    let t0 = Instant::now();
    let failures = check_sampled_pairs(&h, 128, 1);
    println!(
        "Lemma 2.2 on 128 sampled pairs: {} failures ({:.2?})",
        failures.len(),
        t0.elapsed()
    );
    let t0 = Instant::now();
    let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
    println!(
        "PLL: avg |S| = {:.2} (bound {:.3}), built in {:.2?}",
        hl.average_hubs(),
        p.h_avg_hub_lower_bound(),
        t0.elapsed()
    );
    let report = audit_sampled(&h, &hl, 96, 2);
    println!(
        "sampled audit: {}/{} triples charged",
        report.charged, report.triples
    );

    println!("\n== BIG: G'(3,2) protocol on ~800k max-degree-3 vertices ==");
    let params = GadgetParams::new(3, 2).expect("valid params");
    let m = Repr::new(params).modulus() as usize;
    let instance = SumIndexInstance::random(m, 77);
    let t0 = Instant::now();
    let protocol =
        hl_sumindex::g_protocol::GPrimeProtocol::new(params, &instance).expect("protocol");
    println!(
        "setup: n(G') = {}, max degree = {}, built in {:.2?}",
        protocol.graph_nodes(),
        protocol.max_degree(),
        t0.elapsed()
    );
    let mut correct = true;
    for a in 0..m as u64 {
        for b in 0..m as u64 {
            correct &= protocol.run(a, b) == instance.answer(a as usize, b as usize);
        }
    }
    println!("all {} input pairs correct: {}", m * m, correct);
}

/// Highway — empirical highway dimension across families (the ADF+16
/// explanation §1.1 gives for hub labeling's practical success).
fn highway() {
    use hl_oracles::highway::{empirical_highway_dimension, estimate};

    println!("\n== Highway: empirical highway dimension (greedy estimate) ==");
    let mut t = Table::new(vec![
        "graph",
        "n",
        "h (max over scales)",
        "per-scale max_in_ball",
    ]);
    for family in [
        Family::Path,
        Family::Grid,
        Family::RandomTree,
        Family::PowerLaw,
        Family::Degree3Expander,
    ] {
        let g = family_graph(family, 64, 19);
        let sweep = estimate(&g);
        let per_scale: Vec<String> = sweep
            .iter()
            .map(|e| format!("r{}:{}", e.r, e.max_in_ball))
            .collect();
        t.row(vec![
            family.name().to_string(),
            g.num_nodes().to_string(),
            empirical_highway_dimension(&g).to_string(),
            per_scale.join(" "),
        ]);
    }
    print!("{t}");
}

/// Growth — label-size scaling shapes per family (the §1.1 landscape:
/// log n on trees, ~sqrt(n) on grids/planar-like, near-linear on the
/// gadget), with fitted growth exponents.
fn growth() {
    use hl_core::separator_labeling::separator_labeling;

    println!("\n== Growth: avg hub size vs n (PLL betweenness; separator for grids) ==");
    let mut t = Table::new(vec![
        "family", "n1", "avg1", "n2", "avg2", "n4", "avg4", "exponent",
    ]);
    // Fitted exponent from the first and last point: log(avg4/avg1)/log(n4/n1).
    let mut row = |name: &str, points: Vec<(usize, f64)>| {
        let (n1, a1) = points[0];
        let (n4, a4) = points[2];
        let exp = (a4 / a1).ln() / (n4 as f64 / n1 as f64).ln();
        t.row(vec![
            name.to_string(),
            n1.to_string(),
            format!("{a1:.2}"),
            points[1].0.to_string(),
            format!("{:.2}", points[1].1),
            n4.to_string(),
            format!("{a4:.2}"),
            format!("{exp:.2}"),
        ]);
    };
    for family in [Family::RandomTree, Family::SparseRandom, Family::PowerLaw] {
        let mut points = Vec::new();
        for n in [128usize, 256, 512] {
            let g = family_graph(family, n, 5);
            let hl = PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
                .expect("betweenness order")
                .into_labeling();
            points.push((g.num_nodes(), hl.average_hubs()));
        }
        row(family.name(), points);
    }
    // Grids with both constructions.
    let mut pll_points = Vec::new();
    let mut sep_points = Vec::new();
    for side in [12usize, 17, 24] {
        let g = generators::grid(side, side);
        let hl = PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
            .expect("betweenness order")
            .into_labeling();
        pll_points.push((g.num_nodes(), hl.average_hubs()));
        let sep = separator_labeling(&g);
        sep_points.push((g.num_nodes(), sep.average_hubs()));
    }
    row("grid/pll", pll_points);
    row("grid/separator", sep_points);
    // Unit-disk (planar-like) with separator labeling.
    let mut disk_points = Vec::new();
    for n in [128usize, 256, 512] {
        let radius = (3.0 / n as f64).sqrt(); // keep expected degree ~constant
        let g = generators::unit_disk(n, radius, 9);
        let sep = separator_labeling(&g);
        disk_points.push((g.num_nodes(), sep.average_hubs()));
    }
    row("unit-disk/separator", disk_points);
    // The gadget family (near-linear: exponent ~1).
    let mut gadget_points = Vec::new();
    for (b, ell) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let h = HGraph::build(GadgetParams::new(b, ell).expect("params"));
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        gadget_points.push((h.graph().num_nodes(), hl.average_hubs()));
    }
    row("gadget H(b,l)", gadget_points);
    print!("{t}");
    println!("(exponent: log-log slope between first and last point; 0 ~ polylog, 0.5 ~ sqrt, 1 ~ linear)");
}

/// Encoding — bits per label across encodings (the "careful encoding"
/// step §1.1 says the sublinear labelings rely on).
fn encoding() {
    use hl_labeling::compact::{encode_labeling_compact, CompactParams};

    println!("\n== Encoding: avg bits/label, gamma vs best-of-4 compact ==");
    let mut t = Table::new(vec![
        "graph",
        "construction",
        "avg hubs",
        "gamma bits",
        "compact bits",
        "saved",
    ]);
    for family in [Family::Path, Family::Grid, Family::PowerLaw] {
        let g = family_graph(family, 200, 41);
        let diam = hl_graph::properties::diameter_double_sweep(&g);
        let constructions: Vec<(&str, hl_core::HubLabeling)> = vec![
            (
                "pll",
                PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
                    .expect("betweenness order")
                    .into_labeling(),
            ),
            (
                "rand-thresh",
                random_threshold_labeling(&g, RandomThresholdParams::for_size(g.num_nodes(), 2))
                    .expect("rt")
                    .0,
            ),
        ];
        for (name, hl) in constructions {
            let gamma = SchemeStats::of(&encode_labeling(&hl));
            let params = CompactParams::new(g.num_nodes(), diam, 8);
            let compact = SchemeStats::of(&encode_labeling_compact(&hl, &params));
            let saved = 100.0 * (1.0 - compact.average_bits / gamma.average_bits.max(1.0));
            t.row(vec![
                family.name().to_string(),
                name.to_string(),
                format!("{:.1}", hl.average_hubs()),
                format!("{:.0}", gamma.average_bits),
                format!("{:.0}", compact.average_bits),
                format!("{saved:.0}%"),
            ]);
        }
    }
    print!("{t}");
}

/// Tradeoff — the §1 space/time curve: portal oracles interpolating
/// between Dijkstra and the full table, with the hub-label point shown
/// beating the curve.
fn tradeoff() {
    use hl_oracles::portal::PortalOracle;

    println!("\n== Tradeoff: portal-oracle S/T curve vs hub labels (20x20 weighted grid) ==");
    let g = generators::weighted_grid(20, 20, 13);
    let n = g.num_nodes();
    let queries: Vec<(NodeId, NodeId)> = (0..300u64)
        .map(|i| {
            (
                ((i * 97) % n as u64) as NodeId,
                ((i * 263) % n as u64) as NodeId,
            )
        })
        .collect();
    let mut t = Table::new(vec!["oracle", "space (B)", "avg settled", "us/query"]);
    for k in [0usize, 5, 20, 80, 400] {
        let oracle = PortalOracle::by_degree(&g, k);
        let start = Instant::now();
        let mut settled = 0usize;
        for &(u, v) in &queries {
            settled += oracle.query_with_stats(u, v).1.settled;
        }
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        t.row(vec![
            format!("portal k={k}"),
            oracle.memory_bytes().to_string(),
            format!("{:.0}", settled as f64 / queries.len() as f64),
            format!("{us:.1}"),
        ]);
    }
    let hl = PrunedLandmarkLabeling::by_betweenness(&g, 24, 1)
        .expect("betweenness order")
        .into_labeling();
    let start = Instant::now();
    let mut acc = 0u64;
    for &(u, v) in &queries {
        acc = acc.wrapping_add(hl.query(u, v));
    }
    std::hint::black_box(acc);
    let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
    t.row(vec![
        "hub labels".to_string(),
        (hl.total_hubs() * 12).to_string(),
        "0".to_string(),
        format!("{us:.1}"),
    ]);
    print!("{t}");
    println!("(the hub-label row sits far below the portal curve: less space than the");
    println!(" k=400 table at orders-of-magnitude lower query time — the paper's point)");
}
