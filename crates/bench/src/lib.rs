//! Shared infrastructure for the benchmark harness and the `experiments`
//! table generator: plain-text table rendering and the graph-family zoo
//! used across experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod table;
pub mod timing;

pub use families::{family_graph, Family};
pub use table::Table;
