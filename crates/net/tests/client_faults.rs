//! Client resilience against misbehaving servers: mid-batch disconnects,
//! short batches, and trickled responses must each surface a *typed*
//! error promptly — never a truncated `Ok`, never an unbounded hang.
//!
//! Each test runs a minimal hand-rolled mock server (not [`NetServer`])
//! so the misbehavior is exactly what the test says it is.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use hl_net::wire::{
    read_frame, write_frame, ClientHello, Request, Response, ServerHello, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use hl_net::{ClientConfig, NetClient, NetError};

/// Spawns a mock server that applies `handle` to every accepted
/// connection, forever. The thread is detached; it dies with the test
/// process.
fn spawn_mock<F>(handle: F) -> SocketAddr
where
    F: Fn(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
    let addr = listener.local_addr().expect("mock addr");
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            handle(stream);
        }
    });
    addr
}

/// Completes the server side of the HLNP handshake on `stream`.
fn handshake(stream: &mut TcpStream) -> bool {
    let hello = ServerHello {
        protocol_version: PROTOCOL_VERSION,
        store_version: 1,
        num_nodes: 100,
    };
    if write_frame(stream, &hello.encode()).is_err() {
        return false;
    }
    match read_frame(stream, DEFAULT_MAX_FRAME_LEN) {
        Ok(payload) => ClientHello::decode(&payload).is_ok(),
        Err(_) => false,
    }
}

fn fast_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_millis(400),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    }
}

/// The error chain must bottom out in a socket-level failure; a client
/// that reports anything else (or returns `Ok`) mis-handled the fault.
fn is_socket_error(e: &NetError) -> bool {
    match e {
        NetError::Io(_) => true,
        NetError::RetriesExhausted { last, .. } => is_socket_error(last),
        _ => false,
    }
}

#[test]
fn mid_batch_disconnect_is_a_typed_error_not_truncated_ok() {
    // The server answers the first chunk of a pipelined batch, then
    // closes. After k of n responses the client holds real data — it
    // must throw it away and report the failure, not return a short Ok.
    let addr = spawn_mock(|mut stream| {
        if !handshake(&mut stream) {
            return;
        }
        if let Ok(payload) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
            if let Ok(Request::QueryBatch(pairs)) = Request::decode(&payload) {
                let ds = vec![7u64; pairs.len()];
                let _ = write_frame(&mut stream, &Response::DistanceBatch(ds).encode());
            }
        }
        // Drop: half-close after one answered chunk.
    });

    let mut client = NetClient::connect(addr, fast_config()).expect("connect");
    let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, i + 1)).collect();
    let started = Instant::now();
    let result = client.query_batch_pipelined(&pairs, 10, 2);
    match result {
        Ok(ds) => panic!(
            "disconnect after 1 of 4 chunks returned Ok of {} answers",
            ds.len()
        ),
        Err(e) => assert!(is_socket_error(&e), "want a socket-level error, got {e}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "error took {:?}; must not ride out long timeouts",
        started.elapsed()
    );
}

#[test]
fn short_distance_batch_is_rejected_not_padded() {
    // A well-formed DistanceBatch frame carrying fewer answers than the
    // request had pairs: structurally valid, semantically a lie.
    let addr = spawn_mock(|mut stream| {
        if !handshake(&mut stream) {
            return;
        }
        while let Ok(payload) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
            if let Ok(Request::QueryBatch(pairs)) = Request::decode(&payload) {
                let short = vec![7u64; pairs.len().saturating_sub(1)];
                if write_frame(&mut stream, &Response::DistanceBatch(short).encode()).is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    });

    let mut client = NetClient::connect(addr, fast_config()).expect("connect");
    let pairs: Vec<(u32, u32)> = (0..8u32).map(|i| (i, i + 1)).collect();
    match client.query_batch(&pairs) {
        Ok(_) => panic!("short batch must not be Ok"),
        Err(NetError::UnexpectedResponse { .. }) => {}
        Err(other) => panic!("want UnexpectedResponse, got {other}"),
    }
}

#[test]
fn trickled_response_is_cut_off_by_the_whole_frame_budget() {
    // Regression: the client's request timeout used to re-arm on every
    // received byte, so a server dribbling a response one byte per
    // sub-timeout interval could pin a "400 ms timeout" call for tens of
    // seconds. The whole-frame budget must bound it near the timeout.
    let addr = spawn_mock(|mut stream| {
        if !handshake(&mut stream) {
            return;
        }
        if read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).is_err() {
            return;
        }
        // Announce a 64-byte response, then trickle one byte per 100 ms —
        // each byte well inside a naive per-read timeout, the whole frame
        // nowhere near done within any reasonable budget.
        if stream.write_all(&64u32.to_le_bytes()).is_err() {
            return;
        }
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(100));
            if stream
                .write_all(&[0x91])
                .and_then(|_| stream.flush())
                .is_err()
            {
                return; // client hung up: done
            }
        }
    });

    let mut client = NetClient::connect(
        addr,
        ClientConfig {
            max_retries: 0,
            ..fast_config()
        },
    )
    .expect("connect");
    let started = Instant::now();
    match client.query(1, 2) {
        Ok(d) => panic!("trickled frame must not produce a distance ({d})"),
        Err(e) => assert!(is_socket_error(&e), "want a socket-level error, got {e}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "client followed the trickle for {:?}; the 400 ms request \
         timeout must bound the whole response frame",
        started.elapsed()
    );
}
