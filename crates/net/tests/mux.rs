//! Multiplexing end to end: hundreds of concurrent in-flight requests
//! on one protocol-v2 connection, out-of-order completion correlated by
//! request id, per-request deadlines that do not head-of-line block,
//! v1/v2 interop on one port, and reload-under-mux-load with zero wrong
//! answers.
//!
//! Raw [`TcpStream`]s drive the wire-level cases so the frames are
//! exactly what each test says; [`MuxClient`] drives the client-side
//! semantics (deadline isolation, late-response dropping) against both
//! live and scripted mock servers.

use std::collections::HashSet;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::{bfs, generators, Graph, NodeId};
use hl_net::wire::{encode_mux, read_frame, split_mux, write_frame, ClientHello, ServerHello};
use hl_net::{
    ClientConfig, ErrorCode, MuxClient, NetClient, NetError, NetServer, Request, Response,
    ServerConfig, StopHandle, MAX_PROTOCOL_VERSION, PROTOCOL_V2,
};
use hl_server::QueryEngine;

const TEST_MAX_FRAME: u32 = 1 << 20;

struct TestServer {
    addr: SocketAddr,
    stop: StopHandle,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(g: &Graph, tweak: impl FnOnce(&mut ServerConfig)) -> Self {
        let hl = PrunedLandmarkLabeling::by_degree(g).into_labeling();
        let engine = Arc::new(QueryEngine::new(hl, 2).expect("engine"));
        let mut config = ServerConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            frame_timeout: Duration::from_secs(2),
            allow_remote_shutdown: false,
            allow_remote_reload: false,
            ..ServerConfig::default()
        };
        tweak(&mut config);
        let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();
        let stop = server.stop_handle();
        let thread = std::thread::spawn(move || server.serve().expect("serve"));
        TestServer {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.stop();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

/// A raw socket past a v2 handshake, asserting the advertised ceiling.
fn v2_socket(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("server hello");
    let hello = ServerHello::decode(&payload).expect("decode hello");
    assert_eq!(
        hello.protocol_version, MAX_PROTOCOL_VERSION,
        "server must advertise its v2 ceiling"
    );
    let client_hello = ClientHello {
        protocol_version: PROTOCOL_V2,
    };
    write_frame(&mut stream, &client_hello.encode()).expect("client hello");
    stream
}

fn send_mux(stream: &mut TcpStream, id: u64, req: &Request) {
    write_frame(stream, &encode_mux(id, &req.encode())).expect("send mux frame");
}

fn read_mux(stream: &mut TcpStream) -> (u64, Response) {
    let payload = read_frame(stream, TEST_MAX_FRAME).expect("response frame");
    let (id, inner) = split_mux(&payload).expect("mux split");
    (id, Response::decode(inner).expect("decode response"))
}

/// The acceptance bar: one v2 connection, 300 requests written before a
/// single response is read — all in flight at once — answered complete,
/// id-correlated, and BFS-correct regardless of completion order.
#[test]
fn v2_connection_sustains_300_inflight_and_answers_correctly() {
    let g = generators::grid(6, 6);
    let n = g.num_nodes();
    let truth: Vec<Vec<u64>> = (0..n as NodeId)
        .map(|u| bfs::bfs_distances(&g, u))
        .collect();
    let server = TestServer::start(&g, |_| {});
    let mut stream = v2_socket(server.addr);

    const INFLIGHT: usize = 300;
    let mut sent: Vec<(u64, NodeId, NodeId)> = Vec::with_capacity(INFLIGHT);
    for i in 0..INFLIGHT {
        let id = i as u64 + 1;
        let u = (i % n) as NodeId;
        let v = ((i * 7 + 3) % n) as NodeId;
        send_mux(&mut stream, id, &Request::Query { u, v });
        sent.push((id, u, v));
    }

    let mut answered: HashSet<u64> = HashSet::with_capacity(INFLIGHT);
    for _ in 0..INFLIGHT {
        let (id, resp) = read_mux(&mut stream);
        assert!(answered.insert(id), "request id {id} answered twice");
        let &(_, u, v) = sent
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .unwrap_or_else(|| panic!("response for an id never sent: {id}"));
        match resp {
            Response::Distance(d) => {
                assert_eq!(d, truth[u as usize][v as usize], "d({u},{v}) wrong");
            }
            other => panic!("expected Distance for id {id}, got {other:?}"),
        }
    }
    assert_eq!(answered.len(), INFLIGHT, "some request went unanswered");
}

/// MuxClient semantics: submit everything, then collect in *reverse*
/// submission order — each wait only blocks on its own id.
#[test]
fn mux_client_collects_in_any_order() {
    let g = generators::grid(6, 6);
    let n = g.num_nodes();
    let truth: Vec<Vec<u64>> = (0..n as NodeId)
        .map(|u| bfs::bfs_distances(&g, u))
        .collect();
    let server = TestServer::start(&g, |_| {});
    let client = MuxClient::connect(server.addr, ClientConfig::default()).expect("connect");
    assert_eq!(client.num_nodes(), n as u64);

    let mut submitted: Vec<(u64, NodeId, NodeId)> = Vec::new();
    for i in 0..256usize {
        let u = (i % n) as NodeId;
        let v = ((i * 11 + 5) % n) as NodeId;
        let id = client.submit(&Request::Query { u, v }).expect("submit");
        submitted.push((id, u, v));
    }
    for &(id, u, v) in submitted.iter().rev() {
        match client.wait(id, Duration::from_secs(10)).expect("wait") {
            Response::Distance(d) => assert_eq!(d, truth[u as usize][v as usize]),
            other => panic!("expected Distance, got {other:?}"),
        }
    }
    assert_eq!(client.in_flight(), 0);
}

/// Negotiation keeps both protocols on one port: a lock-step v1
/// NetClient and a multiplexing v2 MuxClient serve correct answers from
/// the same daemon at the same time.
#[test]
fn v1_and_v2_clients_interoperate_on_one_port() {
    let g = generators::grid(5, 5);
    let n = g.num_nodes();
    let truth: Vec<Vec<u64>> = (0..n as NodeId)
        .map(|u| bfs::bfs_distances(&g, u))
        .collect();
    let server = TestServer::start(&g, |_| {});

    let mut v1 = NetClient::connect(server.addr, ClientConfig::default()).expect("v1 connect");
    let v2 = MuxClient::connect(server.addr, ClientConfig::default()).expect("v2 connect");
    assert_eq!(
        v1.server_hello().map(|h| h.protocol_version),
        Some(MAX_PROTOCOL_VERSION)
    );
    assert_eq!(v2.server_hello().protocol_version, MAX_PROTOCOL_VERSION);

    // Interleave the two protocols request by request.
    for u in 0..n as NodeId {
        let v = (u * 3 + 2) % n as NodeId;
        assert_eq!(
            v1.query(u, v).expect("v1 query"),
            truth[u as usize][v as usize]
        );
        assert_eq!(
            v2.query(v, u).expect("v2 query"),
            truth[v as usize][u as usize]
        );
    }
    let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId).map(|u| (u, n as NodeId - 1 - u)).collect();
    let want: Vec<u64> = pairs
        .iter()
        .map(|&(u, v)| truth[u as usize][v as usize])
        .collect();
    assert_eq!(v1.query_batch(&pairs).expect("v1 batch"), want);
    assert_eq!(v2.query_batch(&pairs).expect("v2 batch"), want);
}

/// A request that times out abandons only its own slot: later responses
/// keep flowing, the late answer is dropped instead of misdelivered,
/// and unknown ids from the server are ignored.
#[test]
fn per_request_deadline_frees_only_that_request() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
    let addr = listener.local_addr().expect("addr");

    // A scripted server: never answers the first request, answers the
    // second promptly (plus a bogus unknown id), and answers the first
    // *late* — after its waiter gave up — followed by the third.
    let mock = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let hello = ServerHello {
            protocol_version: PROTOCOL_V2,
            store_version: 1,
            num_nodes: 100,
        };
        write_frame(&mut stream, &hello.encode()).expect("send hello");
        let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("client hello");
        let ch = ClientHello::decode(&payload).expect("decode client hello");
        assert_eq!(ch.protocol_version, PROTOCOL_V2);

        let read_id = |stream: &mut TcpStream| -> u64 {
            let payload = read_frame(stream, TEST_MAX_FRAME).expect("request frame");
            split_mux(&payload).expect("split").0
        };
        let pong = Response::Pong.encode();
        let id_a = read_id(&mut stream);
        let id_b = read_id(&mut stream);
        // Unknown id first: the client must drop it on the floor.
        write_frame(&mut stream, &encode_mux(9999, &pong)).expect("bogus id");
        write_frame(&mut stream, &encode_mux(id_b, &pong)).expect("answer b");
        let id_c = read_id(&mut stream);
        // A's answer arrives only now — after A's waiter timed out.
        write_frame(&mut stream, &encode_mux(id_a, &pong)).expect("late a");
        write_frame(&mut stream, &encode_mux(id_c, &pong)).expect("answer c");
        // Hold the socket open until the client is done with it.
        let _ = read_frame(&mut stream, TEST_MAX_FRAME);
    });

    let client = MuxClient::connect(addr, ClientConfig::default()).expect("connect");
    let a = client.submit(&Request::Ping).expect("submit a");
    let b = client.submit(&Request::Ping).expect("submit b");

    // B answers even though A — submitted first — never will: no
    // head-of-line blocking.
    assert!(matches!(
        client.wait(b, Duration::from_secs(5)).expect("wait b"),
        Response::Pong
    ));
    // A's own deadline expires without disturbing anything else.
    match client.wait(a, Duration::from_millis(100)) {
        Err(NetError::RequestTimeout { request_id, .. }) => assert_eq!(request_id, a),
        other => panic!("expected RequestTimeout for {a}, got {other:?}"),
    }
    // C still round-trips although A's late response and a bogus id
    // arrive before it: both are dropped, not misdelivered.
    let c = client.submit(&Request::Ping).expect("submit c");
    assert!(matches!(
        client.wait(c, Duration::from_secs(5)).expect("wait c"),
        Response::Pong
    ));
    assert_eq!(client.in_flight(), 0);

    drop(client); // shuts the socket down, unblocking the mock
    mock.join().expect("mock server");
}

/// The per-connection in-flight cap answers `Busy` *per id* — typed,
/// correlated, and only for engine-bound work (inline ops are exempt).
#[test]
fn inflight_overflow_answers_busy_for_that_id_only() {
    let g = generators::grid(4, 4);
    let server = TestServer::start(&g, |c| c.max_inflight_per_conn = 0);
    let mut stream = v2_socket(server.addr);

    send_mux(&mut stream, 7, &Request::Query { u: 0, v: 1 });
    let (id, resp) = read_mux(&mut stream);
    assert_eq!(id, 7, "Busy must carry the overflowing request's id");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }

    // Ping is answered inline and never counts against the cap.
    send_mux(&mut stream, 8, &Request::Ping);
    let (id, resp) = read_mux(&mut stream);
    assert_eq!(id, 8);
    assert!(matches!(resp, Response::Pong));
}

/// v2 framing violations answer `Malformed` with the best id available:
/// the echoed id when the payload carried 8 bytes, id 0 when it could
/// not even hold one — and the connection keeps serving either way.
#[test]
fn short_mux_frames_answer_malformed_with_best_effort_id() {
    let g = generators::grid(4, 4);
    let server = TestServer::start(&g, |_| {});
    let mut stream = v2_socket(server.addr);

    // 3 payload bytes: too short for an id at all.
    stream.write_all(&3u32.to_le_bytes()).expect("len");
    stream
        .write_all(&[0xAA, 0xBB, 0xCC])
        .expect("short payload");
    let (id, resp) = read_mux(&mut stream);
    assert_eq!(id, 0, "id-less violation must answer on id 0");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }

    // Exactly 8 bytes: an id with an empty request — echo that id.
    stream.write_all(&8u32.to_le_bytes()).expect("len");
    stream.write_all(&0x55u64.to_le_bytes()).expect("bare id");
    let (id, resp) = read_mux(&mut stream);
    assert_eq!(id, 0x55, "parsable id must be echoed on the error");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "got {resp:?}"
    );

    // The frame boundaries were intact, so the connection survives.
    send_mux(&mut stream, 9, &Request::Ping);
    let (id, resp) = read_mux(&mut stream);
    assert_eq!(id, 9);
    assert!(matches!(resp, Response::Pong));
}

/// Reload under multiplexed load: four threads hammer queries on one
/// shared MuxClient while the store is swapped repeatedly. Both staged
/// stores hold the *same* labeling, so every single answer — whichever
/// epoch served it — must equal BFS truth: zero wrong, zero failed.
#[test]
fn reload_mid_mux_swaps_epochs_with_zero_wrong_answers() {
    use hl_core::FlatLabeling;
    use hl_server::FlatStore;

    let g = generators::grid(6, 6);
    let n = g.num_nodes();
    let truth: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..n as NodeId)
            .map(|u| bfs::bfs_distances(&g, u))
            .collect(),
    );
    let flat = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling());

    let mut paths = Vec::new();
    for tag in ["a", "b"] {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hlnet-mux-reload-{}-{tag}.hlbs",
            std::process::id()
        ));
        FlatStore::from_flat(flat.clone())
            .save(&p)
            .expect("save store");
        paths.push(p);
    }

    let server = TestServer::start(&g, |c| c.allow_remote_reload = true);
    let client =
        Arc::new(MuxClient::connect(server.addr, ClientConfig::default()).expect("connect"));

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let client = Arc::clone(&client);
            let truth = Arc::clone(&truth);
            std::thread::spawn(move || {
                for i in 0..200usize {
                    let u = ((i * 13 + w * 7) % n) as NodeId;
                    let v = ((i * 5 + w * 3 + 1) % n) as NodeId;
                    let d = client.query(u, v).expect("query under reload");
                    assert_eq!(
                        d, truth[u as usize][v as usize],
                        "d({u},{v}) wrong mid-reload"
                    );
                }
            })
        })
        .collect();

    let mut last_epoch = 0;
    for round in 0..10 {
        let path = paths[round % 2].to_str().expect("utf-8 path");
        let (epoch, num_nodes) = client.reload(path).expect("reload under load");
        assert_eq!(num_nodes, n as u64);
        assert!(epoch > last_epoch, "epoch must advance on every swap");
        last_epoch = epoch;
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in workers {
        w.join().expect("load thread");
    }
    assert_eq!(last_epoch, 10);

    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}
