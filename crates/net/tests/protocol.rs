//! Protocol robustness against an in-process [`NetServer`]: truncated
//! frames, version mismatches, and oversized frames must each get a
//! typed error frame back — the server never panics and never hangs
//! past its timeouts.
//!
//! Raw [`TcpStream`]s (not [`NetClient`]) drive the hostile cases, so
//! the bytes on the wire are exactly what each test says they are.
//! Every test socket carries a read timeout: a hung server fails the
//! test instead of wedging the suite.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::generators;
use hl_net::wire::{read_frame, write_frame, ClientHello, ServerHello};
use hl_net::{ErrorCode, NetServer, Request, Response, ServerConfig, StopHandle};
use hl_server::QueryEngine;

const TEST_MAX_FRAME: u32 = 4096;

struct TestServer {
    addr: SocketAddr,
    stop: StopHandle,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start() -> Self {
        let g = generators::grid(5, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let engine = Arc::new(QueryEngine::new(hl, 1).expect("engine"));
        let config = ServerConfig {
            max_connections: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            frame_timeout: Duration::from_millis(500),
            max_frame_len: TEST_MAX_FRAME,
            allow_remote_shutdown: false,
            allow_remote_reload: false,
            ..ServerConfig::default()
        };
        let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();
        let stop = server.stop_handle();
        let thread = std::thread::spawn(move || {
            server.serve().expect("serve");
        });
        TestServer {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    /// A raw socket that has consumed the server hello but sent nothing.
    fn raw_socket(&self) -> (TcpStream, ServerHello) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("server hello");
        let hello = ServerHello::decode(&payload).expect("decode server hello");
        (stream, hello)
    }

    /// A raw socket past a correct *v1* handshake, ready for request
    /// frames. The hello advertises the server's ceiling (v2); these
    /// tests pin the lock-step v1 protocol deliberately.
    fn handshaken_socket(&self) -> TcpStream {
        let (mut stream, _hello) = self.raw_socket();
        let client_hello = ClientHello {
            protocol_version: hl_net::PROTOCOL_VERSION,
        };
        write_frame(&mut stream, &client_hello.encode()).expect("client hello");
        stream
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.stop();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) -> String {
    let payload = read_frame(stream, TEST_MAX_FRAME).expect("error frame");
    match Response::decode(&payload).expect("decode response") {
        Response::Error { code: got, message } => {
            assert_eq!(got, code, "wrong error code: {message}");
            message
        }
        other => panic!("expected an Error frame with {code:?}, got {other:?}"),
    }
}

#[test]
fn version_mismatch_gets_typed_error_then_close() {
    let server = TestServer::start();
    let (mut stream, hello) = server.raw_socket();
    assert!(hello.num_nodes > 0);

    let bad_hello = ClientHello {
        protocol_version: hello.protocol_version + 1,
    };
    write_frame(&mut stream, &bad_hello.encode()).expect("send bad hello");
    let message = expect_error(&mut stream, ErrorCode::VersionMismatch);
    assert!(message.contains("protocol"), "uninformative: {message}");

    // The server closes after a failed handshake: next read sees EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF"), 0);
}

#[test]
fn truncated_request_body_gets_malformed_and_connection_survives() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // A Query frame is opcode + 8 bytes of vertex ids; send only 3.
    let truncated = [0x11u8, 0x00, 0x00, 0x00];
    write_frame(&mut stream, &truncated).expect("send truncated query");
    expect_error(&mut stream, ErrorCode::Malformed);

    // The frame boundary was intact, so the connection still serves.
    write_frame(&mut stream, &Request::Query { u: 0, v: 24 }.encode()).expect("send good query");
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("response");
    match Response::decode(&payload).expect("decode") {
        Response::Distance(d) => assert_eq!(d, 8), // corners of a 5x5 grid
        other => panic!("expected Distance, got {other:?}"),
    }
}

#[test]
fn batch_length_lie_gets_malformed_not_a_hang() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // QueryBatch claiming 1000 pairs but carrying none: the decoder must
    // reject the count against the actual body, not wait for more bytes.
    let mut lie = vec![0x12u8];
    lie.extend_from_slice(&1000u32.to_le_bytes());
    write_frame(&mut stream, &lie).expect("send lying batch");
    expect_error(&mut stream, ErrorCode::Malformed);
}

#[test]
fn batch_count_u32_max_is_rejected_without_huge_allocation() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // The extreme crafted length: a count of u32::MAX implies a ~32 GiB
    // batch. The decoder must bounce it off the remaining-bytes check
    // before reserving anything — a trusting `with_capacity(count)`
    // here is the exact shape the untrusted-length-alloc lint forbids.
    let mut lie = vec![0x12u8];
    lie.extend_from_slice(&u32::MAX.to_le_bytes());
    write_frame(&mut stream, &lie).expect("send u32::MAX batch");
    expect_error(&mut stream, ErrorCode::Malformed);
}

#[test]
fn oversized_frame_is_rejected_unread_with_typed_error() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // Announce a frame far over the server's cap. The server must answer
    // from the length prefix alone — we never send the body.
    let huge = (TEST_MAX_FRAME + 1).to_le_bytes();
    stream.write_all(&huge).expect("send oversized prefix");
    stream.flush().unwrap();
    let message = expect_error(&mut stream, ErrorCode::FrameTooLarge);
    assert!(
        message.contains(&TEST_MAX_FRAME.to_string()),
        "cap missing from message: {message}"
    );

    // Framing is unrecoverable after an oversized announcement: EOF next.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF"), 0);
}

#[test]
fn zero_length_frame_is_rejected() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();
    stream
        .write_all(&0u32.to_le_bytes())
        .expect("send zero len");
    stream.flush().unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);
}

#[test]
fn half_a_frame_then_silence_times_out_instead_of_hanging() {
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // Promise 100 bytes, deliver 2, then go quiet. The server's read
    // timeout (2s here) must end the connection; we observe EOF well
    // before our own 5s socket timeout would fire.
    stream.write_all(&100u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[0x11, 0x00]).expect("partial body");
    stream.flush().unwrap();

    let started = std::time::Instant::now();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("server must close");
    assert!(rest.is_empty(), "no error frame for a socket-level timeout");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server held a dead connection open too long"
    );
}

#[test]
fn slow_loris_client_is_cut_off_by_the_frame_budget() {
    // Regression: with only per-read socket timeouts, a client dribbling
    // one byte per `read_timeout - ε` resets the clock on every byte and
    // holds its connection slot forever. The whole-frame budget
    // (`frame_timeout`, 500 ms in this harness) must cut the connection
    // regardless of how lively the trickle looks per-read.
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    // Announce a 64-byte frame, then trickle its body at 8 bytes/second —
    // well under the 2 s per-read idle timeout, but the frame as a whole
    // can never finish inside the 500 ms budget.
    let started = std::time::Instant::now();
    stream.write_all(&64u32.to_le_bytes()).expect("prefix");
    let cut_off = loop {
        if stream
            .write_all(&[0x11])
            .and_then(|_| stream.flush())
            .is_err()
        {
            break true; // server closed; the write side noticed
        }
        if started.elapsed() > Duration::from_secs(4) {
            break false; // still accepting bytes long past the budget
        }
        std::thread::sleep(Duration::from_millis(125));
    };
    // Either the trickle write failed (reset) or the read side sees EOF.
    if !cut_off {
        panic!(
            "server accepted a trickled frame for {:?}",
            started.elapsed()
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "cut-off took {:?}, far past the 500 ms frame budget",
        started.elapsed()
    );
}

#[test]
fn rapid_connect_disconnect_churn_leaves_accept_loop_alive() {
    // Regression, found by hlnp-fuzz: clients that vanish while still in
    // the accept queue surface as transient accept() errors
    // (ConnectionAborted on Linux), and the accept loop used to treat
    // any such error as fatal — one crashed client could kill the
    // daemon. The loop must shrug these off and keep serving.
    let server = TestServer::start();
    for _ in 0..200 {
        // Connect and drop immediately, without ever reading the hello.
        let _ = TcpStream::connect(server.addr);
    }
    // Handlers for the churned sockets may still be winding down, so the
    // first few attempts can be turned away Busy (or closed mid-write) —
    // that is the connection cap working, not the defect under test. The
    // defect is the accept loop dying, which no amount of retrying fixes.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let answered = (|| -> Result<bool, hl_net::WireError> {
            let mut stream = server.handshaken_socket();
            write_frame(&mut stream, &Request::Query { u: 0, v: 24 }.encode())?;
            let payload = read_frame(&mut stream, TEST_MAX_FRAME)?;
            match Response::decode(&payload)? {
                Response::Distance(d) => {
                    assert_eq!(d, 8);
                    Ok(true)
                }
                Response::Error { .. } => Ok(false), // Busy: cap still full
                other => panic!("expected Distance or Busy, got {other:?}"),
            }
        })()
        .unwrap_or(false);
        if answered {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never recovered from connect/disconnect churn"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn remote_shutdown_can_be_disabled() {
    // Regression, found by hlnp-fuzz: the Shutdown opcode is one byte on
    // an unauthenticated protocol, so with remote shutdown always-on,
    // any client — or any corrupted frame decoding as OP_SHUTDOWN — can
    // stop the daemon. With `allow_remote_shutdown: false` the request
    // must get a typed Unsupported error and the connection must keep
    // serving; the daemon stays up.
    let server = TestServer::start(); // harness config disables it
    let mut stream = server.handshaken_socket();

    write_frame(&mut stream, &Request::Shutdown.encode()).expect("send shutdown");
    let message = expect_error(&mut stream, ErrorCode::Unsupported);
    assert!(message.contains("disabled"), "uninformative: {message}");

    // Same connection still answers queries...
    write_frame(&mut stream, &Request::Query { u: 0, v: 24 }.encode()).expect("send query");
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("response");
    match Response::decode(&payload).expect("decode") {
        Response::Distance(d) => assert_eq!(d, 8),
        other => panic!("expected Distance, got {other:?}"),
    }

    // ...and so do fresh ones: the accept loop did not die.
    let mut fresh = server.handshaken_socket();
    write_frame(&mut fresh, &Request::Query { u: 0, v: 24 }.encode()).expect("send query");
    let payload = read_frame(&mut fresh, TEST_MAX_FRAME).expect("response");
    assert!(matches!(
        Response::decode(&payload).expect("decode"),
        Response::Distance(8)
    ));
}

#[test]
fn remote_shutdown_when_allowed_acks_and_stops() {
    let g = generators::grid(4, 4);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let engine = Arc::new(QueryEngine::new(hl, 1).expect("engine"));
    let config = ServerConfig {
        max_connections: 4,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        frame_timeout: Duration::from_millis(500),
        max_frame_len: TEST_MAX_FRAME,
        allow_remote_shutdown: true,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("server hello");
    ServerHello::decode(&payload).expect("decode hello");
    let client_hello = ClientHello {
        protocol_version: hl_net::PROTOCOL_VERSION,
    };
    write_frame(&mut stream, &client_hello.encode()).expect("client hello");
    write_frame(&mut stream, &Request::Shutdown.encode()).expect("send shutdown");
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("ack frame");
    assert!(matches!(
        Response::decode(&payload).expect("decode"),
        Response::ShutdownAck
    ));
    // serve() returns: the daemon honored the request.
    thread.join().expect("server thread");
}

#[test]
fn over_cap_connection_is_greeted_and_turned_away_busy() {
    let g = generators::grid(4, 4);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let engine = Arc::new(QueryEngine::new(hl, 1).expect("engine"));
    let config = ServerConfig {
        max_connections: 0, // everyone is over the cap
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        frame_timeout: Duration::from_millis(500),
        max_frame_len: TEST_MAX_FRAME,
        allow_remote_shutdown: false,
        allow_remote_reload: false,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("hello before rejection");
    ServerHello::decode(&payload).expect("valid hello even when busy");
    expect_error(&mut stream, ErrorCode::Busy);

    stop.stop();
    thread.join().expect("server thread");
}

#[test]
fn remote_reload_can_be_disabled() {
    // Reload shares Shutdown's trust calculus: one opcode on an
    // unauthenticated protocol that replaces every answer the daemon
    // gives. With `allow_remote_reload: false` (the harness config) the
    // request must get a typed Unsupported error and the connection must
    // keep serving from the store it already has.
    let server = TestServer::start();
    let mut stream = server.handshaken_socket();

    let req = Request::Reload {
        path: "/definitely/not/consulted.hlbs".into(),
    };
    write_frame(&mut stream, &req.encode()).expect("send reload");
    let message = expect_error(&mut stream, ErrorCode::Unsupported);
    assert!(message.contains("disabled"), "uninformative: {message}");

    write_frame(&mut stream, &Request::Query { u: 0, v: 24 }.encode()).expect("send query");
    let payload = read_frame(&mut stream, TEST_MAX_FRAME).expect("response");
    assert!(matches!(
        Response::decode(&payload).expect("decode"),
        Response::Distance(8)
    ));
}

#[test]
fn reload_swaps_store_updates_hello_and_survives_bad_paths() {
    use hl_core::FlatLabeling;
    use hl_net::{ClientConfig, NetClient, NetError};
    use hl_server::FlatStore;

    let g1 = generators::grid(5, 5);
    let hl1 = PrunedLandmarkLabeling::by_degree(&g1).into_labeling();
    let engine = Arc::new(QueryEngine::new(hl1, 1).expect("engine"));
    let config = ServerConfig {
        max_connections: 4,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        frame_timeout: Duration::from_millis(500),
        max_frame_len: TEST_MAX_FRAME,
        allow_remote_shutdown: false,
        allow_remote_reload: true,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(engine, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));

    // A v2 store of a *different* graph, staged on disk for the daemon.
    let g2 = generators::grid(6, 6);
    let f2 = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g2).into_labeling());
    let mut path = std::env::temp_dir();
    path.push(format!("hlnet-proto-reload-{}.hlbs", std::process::id()));
    FlatStore::from_flat(f2.clone()).save(&path).expect("save");

    let mut client = NetClient::connect(addr, ClientConfig::default()).expect("connect");
    assert_eq!(client.server_hello().map(|h| h.store_version), Some(1));
    assert_eq!(client.query(0, 24).expect("pre-reload query"), 8);

    // A bad path must fail loudly and leave the old epoch serving.
    match client.reload("/definitely/missing.hlbs") {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Internal),
        other => panic!("expected an Internal error frame, got {other:?}"),
    }
    assert_eq!(client.query(0, 24).expect("query after failed reload"), 8);

    // A good path swaps the store: 36 vertices, new distances.
    let (epoch, num_nodes) = client
        .reload(path.to_str().expect("utf-8 path"))
        .expect("reload");
    assert_eq!(epoch, 1);
    assert_eq!(num_nodes, 36);
    assert_eq!(client.query(0, 35).expect("post-reload query"), 10);

    // A fresh handshake advertises the v2 store and the new node count.
    let fresh = NetClient::connect(addr, ClientConfig::default()).expect("reconnect");
    let hello = fresh.server_hello().expect("hello").clone();
    assert_eq!(hello.store_version, 2);
    assert_eq!(hello.num_nodes, 36);

    let _ = std::fs::remove_file(&path);
    stop.stop();
    thread.join().expect("server thread");
}

#[test]
fn label_fetches_match_the_served_labeling() {
    use hl_core::FlatLabeling;
    use hl_net::{ClientConfig, NetClient, NetError};

    let g = generators::grid(5, 5);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let flat = FlatLabeling::from_labeling(&hl);
    let server = TestServer::start(); // serves the same 5x5 labeling

    let mut client = NetClient::connect(server.addr, ClientConfig::default()).expect("connect");

    // Single label: exactly the arena's (hub, dist) run for the vertex.
    for v in [0u32, 12, 24] {
        let pairs = client.label(v).expect("label");
        let want: Vec<(u32, u64)> = flat.pairs_of(v).collect();
        assert_eq!(pairs, want, "label({v}) disagrees with the arena");
    }

    // Batch and pipelined batch, in request order.
    let vs: Vec<u32> = (0..25).collect();
    let want: Vec<Vec<(u32, u64)>> = vs.iter().map(|&v| flat.pairs_of(v).collect()).collect();
    assert_eq!(client.label_batch(&vs).expect("label batch"), want);
    assert_eq!(
        client
            .label_batch_pipelined(&vs, 4, 3)
            .expect("pipelined labels"),
        want
    );

    // Out-of-range vertices get the typed error, atomically for batches.
    match client.label(25) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NodeOutOfRange),
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    match client.label_batch(&[0, 1, 999]) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NodeOutOfRange),
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // And the connection keeps serving afterwards.
    assert!(!client.label(0).expect("label after error").is_empty());
}

#[test]
fn stop_handle_drains_idle_connections() {
    let server = TestServer::start();
    // An idle handshaken connection is parked in a blocking read.
    let mut idle = server.handshaken_socket();
    // Give the handler a moment to reach its read loop.
    std::thread::sleep(Duration::from_millis(50));

    server.stop.stop();
    assert!(server.stop.is_stopping());

    // Drop joins the server thread; it must come back promptly because
    // shutdown half-closes the idle connection's read side.
    drop(server);

    let mut rest = Vec::new();
    let _ = idle.read_to_end(&mut rest); // EOF or reset, either is fine
}
