//! End-to-end tests of the `hubserve` binary (spawned as a subprocess).

use std::io::Write;
use std::process::{Command, Stdio};

fn hubserve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hubserve"))
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hubserve-test-{}-{name}", std::process::id()));
    p
}

fn write_grid_graph(path: &std::path::Path, rows: usize, cols: usize) {
    let g = hl_graph::generators::grid(rows, cols);
    let file = std::fs::File::create(path).unwrap();
    hl_graph::io::write_edge_list(&g, std::io::BufWriter::new(file)).unwrap();
}

#[test]
fn build_then_query_pipeline() {
    let graph = tempfile("g.txt");
    let store = tempfile("s.hlbs");
    let pairs = tempfile("p.txt");
    write_grid_graph(&graph, 7, 7);

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .expect("spawn hubserve build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Batch mode over a pairs file.
    std::fs::write(&pairs, "0 48\n0 0\n12 13\n").unwrap();
    let out = hubserve()
        .args(["query", store.to_str().unwrap(), pairs.to_str().unwrap()])
        .output()
        .expect("spawn hubserve query (batch)");
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 7x7 grid: corner to corner = 12.
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["0 48 12", "0 0 0", "12 13 1"]
    );

    // Line-protocol mode over stdin.
    let mut child = hubserve()
        .args(["query", store.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hubserve query (stdin)");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"0 48\n# comment\n\n48 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["0 48 12", "48 0 12"]
    );

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(store);
    let _ = std::fs::remove_file(pairs);
}

#[test]
fn query_agrees_with_hub_labeling_everywhere() {
    let graph = tempfile("agree-g.txt");
    let store = tempfile("agree-s.hlbs");
    let pairs = tempfile("agree-p.txt");
    let g = hl_graph::generators::random_tree(30, 13);
    let file = std::fs::File::create(&graph).unwrap();
    hl_graph::io::write_edge_list(&g, std::io::BufWriter::new(file)).unwrap();

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let n = g.num_nodes() as u32;
    let mut expect = String::new();
    let mut input = String::new();
    let hl = hl_core::pll::PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    for u in 0..n {
        for v in 0..n {
            input.push_str(&format!("{u} {v}\n"));
            expect.push_str(&format!("{u} {v} {}\n", hl.query(u, v)));
        }
    }
    std::fs::write(&pairs, &input).unwrap();
    let out = hubserve()
        .args(["query", store.to_str().unwrap(), pairs.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), expect);

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(store);
    let _ = std::fs::remove_file(pairs);
}

#[test]
fn stats_reports_arena_size() {
    let graph = tempfile("stats-g.txt");
    let store = tempfile("stats-s.hlbs");
    write_grid_graph(&graph, 6, 6);

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hubserve()
        .args(["stats", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nodes              36"), "{stdout}");
    assert!(stdout.contains("arena entries"), "{stdout}");
    assert!(stdout.contains("arena heap bytes"), "{stdout}");

    // The reported numbers must match the in-process decode.
    let parsed = hl_server::LabelStore::open(&store).unwrap();
    let flat = parsed.to_flat().unwrap();
    assert!(stdout.contains(&format!("arena entries      {}", flat.num_entries())));
    assert!(stdout.contains(&format!("arena heap bytes   {}", flat.heap_bytes())));

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(store);
}

#[test]
fn convert_to_compact_flavor_serves_identical_answers() {
    let graph = tempfile("v2c-g.txt");
    let store = tempfile("v2c-s.hlbs");
    let compact = tempfile("v2c-c.hlbs");
    let tuned = tempfile("v2c-t.hlbs");
    let pairs = tempfile("v2c-p.txt");
    write_grid_graph(&graph, 8, 8);

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // v1 -> v2c, and a frequency-reordered variant alongside.
    let out = hubserve()
        .args([
            "convert",
            store.to_str().unwrap(),
            compact.to_str().unwrap(),
            "--to",
            "v2c",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "convert failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = hubserve()
        .args([
            "convert",
            store.to_str().unwrap(),
            tuned.to_str().unwrap(),
            "--to",
            "v2c",
            "--reorder",
            "freq",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "reorder convert failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --reorder remaps hub ids, so the byte-roundtrip check must refuse.
    let out = hubserve()
        .args([
            "convert",
            store.to_str().unwrap(),
            tuned.to_str().unwrap(),
            "--to",
            "v2c",
            "--reorder",
            "freq",
            "--verify-roundtrip",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // stats mounts the compact arena natively, and the reported heap
    // bytes are the exact sum of the lane sizes (satellite c contract).
    let out = hubserve()
        .args(["stats", compact.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flavor v2c"), "{stdout}");
    assert!(stdout.contains("arena kind         compact"), "{stdout}");
    let c = match hl_server::AnyStore::open(&compact)
        .unwrap()
        .into_served()
        .unwrap()
    {
        hl_server::ServedLabeling::Compact(c) => c,
        _ => panic!("expected compact arena"),
    };
    assert!(stdout.contains(&format!("arena entries      {}", c.num_entries())));
    assert!(stdout.contains(&format!("arena heap bytes   {}", c.heap_bytes())));

    // All three stores answer the same pairs identically.
    std::fs::write(&pairs, "0 63\n5 58\n0 0\n7 56\n").unwrap();
    let mut answers = Vec::new();
    for p in [&store, &compact, &tuned] {
        let out = hubserve()
            .args(["query", p.to_str().unwrap(), pairs.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "query failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        answers.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[0], answers[2]);
    // 8x8 grid: corner to corner = 14.
    assert!(answers[0].starts_with("0 63 14\n"), "{}", answers[0]);

    for f in [graph, store, compact, tuned, pairs] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn corrupt_store_fails_with_nonzero_exit() {
    let graph = tempfile("bad-g.txt");
    let store = tempfile("bad-s.hlbs");
    write_grid_graph(&graph, 5, 5);

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Flip a byte in the middle of the store.
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&store, &bytes).unwrap();

    let mut child = hubserve()
        .args(["query", store.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "corrupt store must not serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("corrupt") || stderr.contains("truncated"),
        "unexpected error text: {stderr}"
    );

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(store);
}

#[test]
fn bench_reports_throughput_and_metrics() {
    let graph = tempfile("bench-g.txt");
    let store = tempfile("bench-s.hlbs");
    write_grid_graph(&graph, 10, 10);

    let out = hubserve()
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = hubserve()
        .args([
            "bench",
            store.to_str().unwrap(),
            "--queries",
            "2000",
            "--workers",
            "4",
            "--batch",
            "256",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 worker"),
        "missing single-worker line: {stdout}"
    );
    assert!(
        stdout.contains("4 workers"),
        "missing pooled line: {stdout}"
    );
    assert!(stdout.contains("speedup"), "missing speedup: {stdout}");
    assert!(
        stdout.contains("queries served"),
        "missing metrics snapshot: {stdout}"
    );
    assert!(
        stdout.contains("p99"),
        "missing latency percentiles: {stdout}"
    );

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(store);
}

#[test]
fn usage_errors_exit_2() {
    let out = hubserve().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = hubserve().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
