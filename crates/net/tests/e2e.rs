//! End-to-end: spawn `hubserve serve` as a real subprocess, talk to it
//! with [`NetClient`] over loopback, verify every answer against an
//! in-process [`QueryEngine`] over the same labeling, then shut the
//! daemon down cleanly and assert exit code 0.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, NodeId};
use hl_net::{ClientConfig, NetClient, NetError, MAX_PROTOCOL_VERSION};
use hl_server::QueryEngine;

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hlnet-e2e-{}-{name}", std::process::id()));
    p
}

/// Builds a store for `g` via `hubserve build`, then starts
/// `hubserve serve --addr 127.0.0.1:0` and parses the announced address.
fn spawn_daemon(g: &hl_graph::Graph, tag: &str) -> (Child, String, std::path::PathBuf) {
    let graph = tempfile(&format!("{tag}-g.txt"));
    let store = tempfile(&format!("{tag}-s.hlbs"));
    let file = std::fs::File::create(&graph).unwrap();
    hl_graph::io::write_edge_list(g, std::io::BufWriter::new(file)).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_hubserve"))
        .args(["build", graph.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .expect("spawn hubserve build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&graph);

    let mut child = Command::new(env!("CARGO_BIN_EXE_hubserve"))
        .args(["serve", store.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hubserve serve");

    // The daemon announces its ephemeral port on stdout before serving.
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("daemon stdout read");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr, store)
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    }
}

#[test]
fn daemon_answers_match_in_process_engine_then_shuts_down_cleanly() {
    let g = generators::connected_gnm(400, 900, 17);
    let n = g.num_nodes();
    let (mut child, addr, store) = spawn_daemon(&g, "match");

    // The reference: the same labeling the daemon built, queried locally.
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let engine = QueryEngine::new(hl, 2).expect("reference engine");
    let engine = Arc::new(engine);

    let mut client = NetClient::connect(&addr, client_config()).expect("connect");
    assert_eq!(client.num_nodes(), n as u64);
    // The hello advertises the server's *ceiling* (v2); this blocking
    // client still speaks v1 underneath.
    assert_eq!(
        client.server_hello().map(|h| h.protocol_version),
        Some(MAX_PROTOCOL_VERSION)
    );
    client.ping().expect("ping");

    // Single queries.
    let mut rng = Xorshift64::seed_from_u64(5);
    for _ in 0..64 {
        let (u, v) = (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId);
        let remote = client.query(u, v).expect("remote query");
        let local = engine.query(u, v).expect("local query");
        assert_eq!(remote, local, "distance({u},{v}) disagrees");
    }

    // One batch, and the same batch pipelined.
    let pairs: Vec<(NodeId, NodeId)> = (0..512)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();
    let local = engine.query_batch(&pairs).expect("local batch");
    let remote = client.query_batch(&pairs).expect("remote batch");
    assert_eq!(remote, local);
    let piped = client
        .query_batch_pipelined(&pairs, 64, 4)
        .expect("pipelined batch");
    assert_eq!(piped, local);

    // The daemon's metrics saw the traffic.
    let snapshot = client.metrics().expect("metrics");
    assert!(snapshot.connections_opened >= 1);
    assert!(snapshot.net_requests > 0);
    assert!(snapshot.single_queries + snapshot.batch_queries > 0);

    // Graceful shutdown: acknowledged, then the process exits 0.
    client.shutdown().expect("shutdown");
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "daemon must exit cleanly");

    let _ = std::fs::remove_file(store);
}

#[test]
fn daemon_rejects_out_of_range_nodes_with_typed_error() {
    let g = generators::grid(6, 6);
    let n = g.num_nodes() as NodeId;
    let (mut child, addr, store) = spawn_daemon(&g, "range");

    let mut client = NetClient::connect(&addr, client_config()).expect("connect");
    match client.query(0, n + 10) {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, hl_net::ErrorCode::NodeOutOfRange)
        }
        other => panic!("expected a NodeOutOfRange error frame, got {other:?}"),
    }
    // The connection survives a rejected query.
    assert_eq!(
        client.query(0, 35).expect("in-range query after error"),
        10 // opposite corners of a 6x6 grid
    );

    client.shutdown().expect("shutdown");
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0));

    let _ = std::fs::remove_file(store);
}

/// `Child::wait` with a hang guard so a stuck daemon fails the test
/// instead of wedging the suite.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = std::time::Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit within {deadline:?} after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
