//! Deterministic fault injection for HLNP transports.
//!
//! A fuzzer that cannot replay its findings is a rumor mill. Everything
//! here is therefore *planned before it touches a socket*: a seeded
//! [`FaultPlan`] turns a clean byte stream (one or more well-formed
//! frames) into a [`Step`] script — sends, pauses, a disconnect — and
//! the same seed always yields the same script. The script is pure data;
//! [`apply_script`] then plays it against any [`Write`] transport, and
//! [`FaultyTransport`] wraps a whole `Read + Write` stream so every
//! write passes through the plan.
//!
//! The fault kinds mirror what real traffic does to a server at scale:
//!
//! - [`FaultKind::BitFlip`] — frame bytes corrupted in flight (or by a
//!   confused client).
//! - [`FaultKind::Truncate`] — a peer dying mid-frame.
//! - [`FaultKind::LengthLieOverCap`], [`FaultKind::LengthLieZero`],
//!   [`FaultKind::LengthLieOffByOne`] — length prefixes that promise too
//!   much, nothing, or almost the truth.
//! - [`FaultKind::HandshakeGarbage`] — a peer that was never speaking
//!   HLNP at all.
//! - [`FaultKind::SlowLoris`] — one byte at a time, each one fast enough
//!   to look alive, the whole never finishing.
//! - [`FaultKind::Stall`] — a long mid-frame silence, then completion.
//!
//! Protocol v2 (multiplexed) adds id-aware kinds, enumerated separately
//! in [`FaultKind::MUX`] so [`FaultKind::ALL`]'s indices — and with
//! them every recorded v1 campaign seed — stay stable:
//!
//! - [`FaultKind::MuxChunkedInterleave`] — a many-frame stream delivered
//!   in arbitrary chunks with pauses, so partial frames from many
//!   request ids straddle every read.
//! - [`FaultKind::MuxDuplicateId`] — one frame sent twice, id and all.
//! - [`FaultKind::MuxReorderedIds`] — whole frames shuffled, so ids hit
//!   the server in neither submission nor monotonic order.
//! - [`FaultKind::MuxIdBitFlip`] — a bit flipped inside one frame's
//!   8-byte id field: a valid request under a phantom id.
//! - [`FaultKind::MuxShortIdFrame`] — an injected frame whose payload is
//!   shorter than an id; the server must answer `Malformed` on id 0 and
//!   keep the connection.
//!
//! The `hlnp-fuzz` binary drives these against a live [`crate::NetServer`]
//! interleaved with clean liveness probes; see `DESIGN.md`'s fault matrix
//! for the expected behavior of every layer under each kind.

use std::io::{self, Read, Write};
use std::time::Duration;

use hl_graph::rng::Xorshift64;

/// One scripted action against a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Write these bytes (and flush).
    Send(Vec<u8>),
    /// Sleep this long before the next step.
    Pause(Duration),
    /// Stop here and drop the connection; later steps never run.
    Disconnect,
}

/// The kinds of injected faults. `ALL` enumerates them for samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip 1–4 random bits somewhere in the stream.
    BitFlip,
    /// Send a strict prefix of the stream, then disconnect.
    Truncate,
    /// Rewrite the first length prefix to exceed any sane frame cap.
    LengthLieOverCap,
    /// Rewrite the first length prefix to zero.
    LengthLieZero,
    /// Rewrite the first length prefix one off the truth, then disconnect.
    LengthLieOffByOne,
    /// Replace the stream with bytes that were never HLNP.
    HandshakeGarbage,
    /// Send the stream one byte at a time with a pause before each, and
    /// disconnect before it completes.
    SlowLoris,
    /// Send half the stream, go silent for a while, then send the rest.
    Stall,
    /// Deliver the whole stream, but in random-sized chunks with pauses
    /// between them, so frames from many ids arrive interleaved with
    /// partial frames across read boundaries.
    MuxChunkedInterleave,
    /// Send every frame once, then one of them a second time (same id).
    MuxDuplicateId,
    /// Send all frames, whole, in a shuffled order.
    MuxReorderedIds,
    /// Flip one bit inside one frame's request-id field.
    MuxIdBitFlip,
    /// Inject a frame whose payload is 1–7 bytes: too short to carry a
    /// v2 request id at all.
    MuxShortIdFrame,
}

impl FaultKind {
    /// Every *v1* fault kind, in a fixed order (the sampler indexes into
    /// it — appending or reordering here would silently change what every
    /// recorded campaign seed replays, so the mux kinds live in
    /// [`FaultKind::MUX`] instead).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::LengthLieOverCap,
        FaultKind::LengthLieZero,
        FaultKind::LengthLieOffByOne,
        FaultKind::HandshakeGarbage,
        FaultKind::SlowLoris,
        FaultKind::Stall,
    ];

    /// The multiplexing-specific (protocol v2) fault kinds, in a fixed
    /// order of their own.
    pub const MUX: [FaultKind; 5] = [
        FaultKind::MuxChunkedInterleave,
        FaultKind::MuxDuplicateId,
        FaultKind::MuxReorderedIds,
        FaultKind::MuxIdBitFlip,
        FaultKind::MuxShortIdFrame,
    ];

    /// Short stable name, for logs and campaign records.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::LengthLieOverCap => "length-lie-over-cap",
            FaultKind::LengthLieZero => "length-lie-zero",
            FaultKind::LengthLieOffByOne => "length-lie-off-by-one",
            FaultKind::HandshakeGarbage => "handshake-garbage",
            FaultKind::SlowLoris => "slow-loris",
            FaultKind::Stall => "stall",
            FaultKind::MuxChunkedInterleave => "mux-chunked-interleave",
            FaultKind::MuxDuplicateId => "mux-duplicate-id",
            FaultKind::MuxReorderedIds => "mux-reordered-ids",
            FaultKind::MuxIdBitFlip => "mux-id-bit-flip",
            FaultKind::MuxShortIdFrame => "mux-short-id-frame",
        }
    }
}

/// Tunables for script generation. The defaults are sized for an
/// in-process fuzz loop: pauses long enough to *be* a stall against a
/// server with sub-second frame budgets, short enough that thousands of
/// iterations finish in seconds.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Pause before each slow-loris byte.
    pub loris_pace: Duration,
    /// Ceiling on slow-loris bytes actually sent (the point is the
    /// pacing, not the payload).
    pub loris_max_bytes: usize,
    /// Length of the mid-frame silence for [`FaultKind::Stall`].
    pub stall: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loris_pace: Duration::from_millis(40),
            loris_max_bytes: 12,
            stall: Duration::from_millis(120),
        }
    }
}

/// A seeded fault planner. Same seed, same sequence of scripts.
#[derive(Debug)]
pub struct FaultPlan {
    rng: Xorshift64,
    config: FaultConfig,
}

impl FaultPlan {
    /// Creates a planner with default [`FaultConfig`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: Xorshift64::seed_from_u64(seed),
            config: FaultConfig::default(),
        }
    }

    /// Creates a planner with explicit tunables.
    pub fn with_config(seed: u64, config: FaultConfig) -> Self {
        FaultPlan {
            rng: Xorshift64::seed_from_u64(seed),
            config,
        }
    }

    /// Draws the next fault kind, uniformly over [`FaultKind::ALL`].
    pub fn pick_kind(&mut self) -> FaultKind {
        FaultKind::ALL[self.rng.gen_index(FaultKind::ALL.len())]
    }

    /// Draws the next multiplexing fault kind, uniformly over
    /// [`FaultKind::MUX`].
    pub fn pick_mux_kind(&mut self) -> FaultKind {
        FaultKind::MUX[self.rng.gen_index(FaultKind::MUX.len())]
    }

    /// Builds the script for `kind` against `clean`, a byte stream that
    /// starts at a frame boundary (length prefix first). An empty
    /// `clean` degenerates to garbage-or-disconnect scripts; nothing
    /// here panics on any input.
    pub fn script(&mut self, kind: FaultKind, clean: &[u8]) -> Vec<Step> {
        match kind {
            FaultKind::BitFlip => self.bit_flip(clean),
            FaultKind::Truncate => self.truncate(clean),
            FaultKind::LengthLieOverCap => self.length_lie(clean, LengthLie::OverCap),
            FaultKind::LengthLieZero => self.length_lie(clean, LengthLie::Zero),
            FaultKind::LengthLieOffByOne => self.length_lie(clean, LengthLie::OffByOne),
            FaultKind::HandshakeGarbage => self.garbage(),
            FaultKind::SlowLoris => self.slow_loris(clean),
            FaultKind::Stall => self.stall(clean),
            FaultKind::MuxChunkedInterleave => self.mux_chunked(clean),
            FaultKind::MuxDuplicateId => self.mux_duplicate(clean),
            FaultKind::MuxReorderedIds => self.mux_reorder(clean),
            FaultKind::MuxIdBitFlip => self.mux_id_flip(clean),
            FaultKind::MuxShortIdFrame => self.mux_short_id(clean),
        }
    }

    fn bit_flip(&mut self, clean: &[u8]) -> Vec<Step> {
        let mut bytes = clean.to_vec();
        if !bytes.is_empty() {
            let flips = 1 + self.rng.gen_index(4);
            for _ in 0..flips {
                let at = self.rng.gen_index(bytes.len());
                bytes[at] ^= 1 << self.rng.gen_index(8);
            }
        }
        vec![Step::Send(bytes), Step::Disconnect]
    }

    fn truncate(&mut self, clean: &[u8]) -> Vec<Step> {
        // A strict prefix: at least the cut loses one byte.
        let keep = if clean.is_empty() {
            0
        } else {
            self.rng.gen_index(clean.len())
        };
        vec![Step::Send(clean[..keep].to_vec()), Step::Disconnect]
    }

    fn length_lie(&mut self, clean: &[u8], lie: LengthLie) -> Vec<Step> {
        let mut bytes = clean.to_vec();
        if bytes.len() >= 4 {
            let truth = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let lied = match lie {
                // Far over any sane cap, but not u32::MAX every time —
                // vary it so off-by-one cap checks get exercised too.
                LengthLie::OverCap => u32::MAX - (self.rng.gen_u64_below(1 << 16) as u32),
                LengthLie::Zero => 0,
                LengthLie::OffByOne => {
                    if self.rng.gen_bool() {
                        truth.wrapping_add(1)
                    } else {
                        truth.wrapping_sub(1)
                    }
                }
            };
            bytes[..4].copy_from_slice(&lied.to_le_bytes());
        }
        vec![Step::Send(bytes), Step::Disconnect]
    }

    fn garbage(&mut self) -> Vec<Step> {
        let len = 1 + self.rng.gen_index(64);
        let bytes = (0..len).map(|_| self.rng.next_u64() as u8).collect();
        vec![Step::Send(bytes), Step::Disconnect]
    }

    fn slow_loris(&mut self, clean: &[u8]) -> Vec<Step> {
        // One byte per pause, never the whole stream: the signature of a
        // loris is that the frame cannot complete.
        let n = clean
            .len()
            .saturating_sub(1)
            .min(self.config.loris_max_bytes);
        let mut steps = Vec::with_capacity(2 * n + 1);
        for &b in &clean[..n] {
            steps.push(Step::Pause(self.config.loris_pace));
            steps.push(Step::Send(vec![b]));
        }
        steps.push(Step::Disconnect);
        steps
    }

    fn stall(&mut self, clean: &[u8]) -> Vec<Step> {
        let half = clean.len() / 2;
        vec![
            Step::Send(clean[..half].to_vec()),
            Step::Pause(self.config.stall),
            Step::Send(clean[half..].to_vec()),
        ]
    }

    fn mux_chunked(&mut self, clean: &[u8]) -> Vec<Step> {
        // Everything arrives, in order, but split at arbitrary points
        // with brief pauses between — so nearly every read the server
        // does ends mid-frame, with several ids' frames in flight.
        let mut steps = Vec::new();
        let mut at = 0usize;
        while at < clean.len() {
            let take = 1 + self.rng.gen_index(16.min(clean.len() - at));
            steps.push(Step::Send(clean[at..at + take].to_vec()));
            at += take;
            if at < clean.len() {
                steps.push(Step::Pause(Duration::from_millis(1)));
            }
        }
        steps
    }

    fn mux_duplicate(&mut self, clean: &[u8]) -> Vec<Step> {
        let frames = frames_of(clean);
        if frames.is_empty() {
            return vec![Step::Disconnect];
        }
        // Whole stream first, then one frame again — same bytes, same
        // request id. The server answers both (it keeps no id table);
        // the *client* must survive the surplus response.
        let again = frames[self.rng.gen_index(frames.len())].clone();
        let mut steps: Vec<Step> = frames.into_iter().map(Step::Send).collect();
        steps.push(Step::Send(again));
        steps
    }

    fn mux_reorder(&mut self, clean: &[u8]) -> Vec<Step> {
        let mut frames = frames_of(clean);
        // Fisher–Yates off the seeded rng: whole frames stay intact,
        // but ids reach the server in neither submission nor monotonic
        // order.
        for i in (1..frames.len()).rev() {
            let j = self.rng.gen_index(i + 1);
            frames.swap(i, j);
        }
        frames.into_iter().map(Step::Send).collect()
    }

    fn mux_id_flip(&mut self, clean: &[u8]) -> Vec<Step> {
        let mut frames = frames_of(clean);
        // A v2 frame's request id is payload bytes 0..8, i.e. frame
        // bytes 4..12 (after the length prefix). Flip one bit of one id
        // in a frame long enough to hold one; if none is, the stream
        // goes out clean.
        let candidates: Vec<usize> = (0..frames.len())
            .filter(|&i| frames[i].len() >= 12)
            .collect();
        if !candidates.is_empty() {
            let at = candidates[self.rng.gen_index(candidates.len())];
            let byte = 4 + self.rng.gen_index(8);
            frames[at][byte] ^= 1 << self.rng.gen_index(8);
        }
        frames.into_iter().map(Step::Send).collect()
    }

    fn mux_short_id(&mut self, clean: &[u8]) -> Vec<Step> {
        // A complete, honestly-framed runt: 1–7 payload bytes, too few
        // to carry a request id. The server must answer Malformed on
        // id 0 and keep serving the surrounding frames.
        let n = 1 + self.rng.gen_index(7);
        let mut runt = u32::try_from(n).unwrap_or(7).to_le_bytes().to_vec();
        for _ in 0..n {
            runt.push(self.rng.next_u64() as u8);
        }
        let mut frames = frames_of(clean);
        let at = self.rng.gen_index(frames.len() + 1);
        frames.insert(at, runt);
        frames.into_iter().map(Step::Send).collect()
    }
}

/// Splits a stream into whole frames (length prefix included). A tail
/// that is not a complete frame — a short prefix, or a length running
/// past the end of the input — is kept as one final partial chunk, so
/// the concatenation of the output is always exactly the input.
fn frames_of(clean: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while clean.len() - at >= 4 {
        let len = u32::from_le_bytes([clean[at], clean[at + 1], clean[at + 2], clean[at + 3]]);
        let end = match (len as usize)
            .checked_add(4)
            .and_then(|t| at.checked_add(t))
        {
            Some(end) if end <= clean.len() => end,
            _ => break,
        };
        frames.push(clean[at..end].to_vec());
        at = end;
    }
    if at < clean.len() {
        frames.push(clean[at..].to_vec());
    }
    frames
}

enum LengthLie {
    OverCap,
    Zero,
    OffByOne,
}

/// What playing a script against a transport amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every step ran; the script did not ask for a disconnect.
    Completed,
    /// The script ended with [`Step::Disconnect`]; the caller should now
    /// drop the transport.
    Disconnected,
    /// The peer stopped accepting bytes first (reset or close). For a
    /// fault campaign this is a *pass*: the server cut us off.
    PeerClosed,
}

/// Plays `steps` against `w`. Write failures are not errors here — a
/// peer hanging up on a hostile stream is the defense working — so the
/// result distinguishes them as [`Outcome::PeerClosed`] instead.
pub fn apply_script<W: Write>(w: &mut W, steps: &[Step]) -> Outcome {
    for step in steps {
        match step {
            Step::Send(bytes) => {
                if w.write_all(bytes).and_then(|_| w.flush()).is_err() {
                    return Outcome::PeerClosed;
                }
            }
            Step::Pause(d) => std::thread::sleep(*d),
            Step::Disconnect => return Outcome::Disconnected,
        }
    }
    Outcome::Completed
}

/// A `Read + Write` transport whose writes are transparently rewritten
/// by a [`FaultPlan`]: each `write` plans a script for the buffer (as if
/// it began at a frame boundary) and plays it against the inner
/// transport. Reads pass through untouched. After a scripted disconnect
/// or a peer close, further writes report success without sending — the
/// connection is considered dead and the caller learns it from reads.
#[derive(Debug)]
pub struct FaultyTransport<T: Read + Write> {
    inner: T,
    plan: FaultPlan,
    kind: FaultKind,
    dead: bool,
}

impl<T: Read + Write> FaultyTransport<T> {
    /// Wraps `inner`; every write is mutated as `kind` by `plan`.
    pub fn new(inner: T, plan: FaultPlan, kind: FaultKind) -> Self {
        FaultyTransport {
            inner,
            plan,
            kind,
            dead: false,
        }
    }

    /// `true` once a script disconnected or the peer closed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Read + Write> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<T: Read + Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.dead {
            let steps = self.plan.script(self.kind, buf);
            match apply_script(&mut self.inner, &steps) {
                Outcome::Completed => {}
                Outcome::Disconnected | Outcome::PeerClosed => self.dead = true,
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            Ok(())
        } else {
            self.inner.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{write_frame, Request};

    fn clean_stream() -> Vec<u8> {
        let mut buf = Vec::new();
        // Unwraps are fine in tests; Vec writes cannot fail.
        write_frame(&mut buf, &Request::Query { u: 3, v: 9 }.encode()).unwrap();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        buf
    }

    /// A clean v2 stream: four mux-wrapped query frames, ids 1..=4.
    fn mux_clean_stream() -> Vec<u8> {
        let mut buf = Vec::new();
        for id in 1..=4u64 {
            let inner = Request::Query { u: 3, v: 9 }.encode();
            write_frame(&mut buf, &crate::wire::encode_mux(id, &inner)).unwrap();
        }
        buf
    }

    #[test]
    fn same_seed_same_scripts() {
        let clean = clean_stream();
        let mut a = FaultPlan::new(42);
        let mut b = FaultPlan::new(42);
        for _ in 0..50 {
            let (ka, kb) = (a.pick_kind(), b.pick_kind());
            assert_eq!(ka, kb);
            assert_eq!(a.script(ka, &clean), b.script(kb, &clean));
        }
        let mux = mux_clean_stream();
        for _ in 0..50 {
            let (ka, kb) = (a.pick_mux_kind(), b.pick_mux_kind());
            assert_eq!(ka, kb);
            assert!(FaultKind::MUX.contains(&ka));
            assert_eq!(a.script(ka, &mux), b.script(kb, &mux));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let clean = clean_stream();
        let mut a = FaultPlan::new(1);
        let mut b = FaultPlan::new(2);
        let sa: Vec<_> = (0..20)
            .map(|_| a.script(FaultKind::BitFlip, &clean))
            .collect();
        let sb: Vec<_> = (0..20)
            .map(|_| b.script(FaultKind::BitFlip, &clean))
            .collect();
        assert_ne!(sa, sb);
    }

    fn sent_bytes(steps: &[Step]) -> Vec<u8> {
        let mut out = Vec::new();
        for s in steps {
            if let Step::Send(b) = s {
                out.extend_from_slice(b);
            }
        }
        out
    }

    #[test]
    fn scripts_have_their_kinds_shape() {
        let clean = clean_stream();
        let mut plan = FaultPlan::new(7);

        let flip = plan.script(FaultKind::BitFlip, &clean);
        let flipped = sent_bytes(&flip);
        assert_eq!(flipped.len(), clean.len());
        assert_ne!(flipped, clean, "bit flip must change something");

        let trunc = plan.script(FaultKind::Truncate, &clean);
        assert!(sent_bytes(&trunc).len() < clean.len());
        assert_eq!(trunc.last(), Some(&Step::Disconnect));

        let zero = plan.script(FaultKind::LengthLieZero, &clean);
        assert_eq!(&sent_bytes(&zero)[..4], &[0, 0, 0, 0]);

        let over = plan.script(FaultKind::LengthLieOverCap, &clean);
        let prefix = &sent_bytes(&over)[..4];
        let lied = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
        assert!(lied > crate::wire::DEFAULT_MAX_FRAME_LEN);

        let off = plan.script(FaultKind::LengthLieOffByOne, &clean);
        let prefix = &sent_bytes(&off)[..4];
        let truth = u32::from_le_bytes([clean[0], clean[1], clean[2], clean[3]]);
        let lied = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
        assert!(lied == truth + 1 || lied == truth - 1);

        let loris = plan.script(FaultKind::SlowLoris, &clean);
        assert!(loris.iter().any(|s| matches!(s, Step::Pause(_))));
        assert!(
            sent_bytes(&loris).len() < clean.len(),
            "a loris never finishes its frame"
        );
        assert_eq!(loris.last(), Some(&Step::Disconnect));

        let stall = plan.script(FaultKind::Stall, &clean);
        assert_eq!(sent_bytes(&stall), clean, "a stall still delivers");
        assert!(stall.iter().any(|s| matches!(s, Step::Pause(_))));
    }

    #[test]
    fn mux_scripts_have_their_kinds_shape() {
        let clean = mux_clean_stream();
        let frames = frames_of(&clean);
        assert_eq!(frames.len(), 4, "test stream is four whole frames");
        let mut plan = FaultPlan::new(11);

        // Chunked interleave: every byte, in order, across many sends.
        let chunked = plan.script(FaultKind::MuxChunkedInterleave, &clean);
        assert_eq!(sent_bytes(&chunked), clean);
        let sends = chunked
            .iter()
            .filter(|s| matches!(s, Step::Send(_)))
            .count();
        assert!(sends > 1, "chunking must actually split the stream");

        // Duplicate: the clean stream, then one of its frames again.
        let dup = plan.script(FaultKind::MuxDuplicateId, &clean);
        let sent = sent_bytes(&dup);
        assert_eq!(&sent[..clean.len()], &clean[..]);
        let extra = &sent[clean.len()..];
        assert!(
            frames.iter().any(|f| f[..] == *extra),
            "the surplus bytes must be one of the original frames"
        );

        // Reorder: the same frames as a multiset, each one intact.
        let reordered = plan.script(FaultKind::MuxReorderedIds, &clean);
        let mut got: Vec<Vec<u8>> = reordered
            .iter()
            .filter_map(|s| match s {
                Step::Send(b) => Some(b.clone()),
                _ => None,
            })
            .collect();
        let mut want = frames.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);

        // Id flip: same length, exactly one byte changed, and that byte
        // sits inside some frame's id field (frame bytes 4..12).
        let flipped = sent_bytes(&plan.script(FaultKind::MuxIdBitFlip, &clean));
        assert_eq!(flipped.len(), clean.len());
        let diffs: Vec<usize> = (0..clean.len())
            .filter(|&i| flipped[i] != clean[i])
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte flips");
        let frame_len = frames[0].len();
        assert!(
            (4..12).contains(&(diffs[0] % frame_len)),
            "flip lands in an id field"
        );

        // Short-id injection: one extra complete frame of 1–7 payload
        // bytes; removing it recovers the original frames.
        let runted = sent_bytes(&plan.script(FaultKind::MuxShortIdFrame, &clean));
        let grew = runted.len() - clean.len();
        assert!(
            (5..=11).contains(&grew),
            "runt is 4-byte prefix + 1..=7 payload"
        );
        let reframed = frames_of(&runted);
        assert_eq!(reframed.len(), 5);
        let originals: Vec<&Vec<u8>> = reframed.iter().filter(|f| f.len() != grew).collect();
        assert_eq!(originals.len(), 4);
    }

    #[test]
    fn frames_of_keeps_every_byte() {
        // Two good frames, then a lying tail that claims more than the
        // input holds: the tail comes back as one partial chunk.
        let mut buf = clean_stream();
        let good = frames_of(&buf).len();
        buf.extend_from_slice(&[200, 0, 0, 0, 0xAA]);
        let frames = frames_of(&buf);
        assert_eq!(frames.len(), good + 1);
        assert_eq!(frames.last().unwrap(), &vec![200, 0, 0, 0, 0xAA]);
        let rejoined: Vec<u8> = frames.concat();
        assert_eq!(rejoined, buf);
        assert!(frames_of(&[]).is_empty());
        assert_eq!(frames_of(&[1, 2]), vec![vec![1, 2]]);
    }

    #[test]
    fn scripts_survive_degenerate_inputs() {
        let mut plan = FaultPlan::new(9);
        for kind in FaultKind::ALL.into_iter().chain(FaultKind::MUX) {
            for input in [&[][..], &[0x01][..], &[1, 2, 3][..]] {
                let steps = plan.script(kind, input);
                // Playing against a sink must also never fail.
                let mut sink = Vec::new();
                let _ = apply_script(&mut sink, &steps);
            }
        }
    }

    #[test]
    fn apply_reports_peer_close() {
        /// A writer that refuses everything, like a reset socket.
        struct Closed;
        impl Write for Closed {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "reset"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let steps = vec![Step::Send(vec![1, 2, 3]), Step::Disconnect];
        assert_eq!(apply_script(&mut Closed, &steps), Outcome::PeerClosed);
        let mut ok = Vec::new();
        assert_eq!(apply_script(&mut ok, &steps), Outcome::Disconnected);
        let steps = vec![Step::Send(vec![1])];
        assert_eq!(apply_script(&mut ok, &steps), Outcome::Completed);
    }

    #[test]
    fn faulty_transport_mutates_writes_and_passes_reads() {
        use std::io::Cursor;
        let clean = clean_stream();
        // Inner transport: reads from a fixed buffer, writes to a Vec.
        struct Mem {
            r: Cursor<Vec<u8>>,
            w: Vec<u8>,
        }
        impl Read for Mem {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.r.read(buf)
            }
        }
        impl Write for Mem {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.w.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mem = Mem {
            r: Cursor::new(vec![9, 8, 7]),
            w: Vec::new(),
        };
        let mut t = FaultyTransport::new(mem, FaultPlan::new(5), FaultKind::BitFlip);
        t.write_all(&clean).unwrap();
        let mut got = [0u8; 3];
        t.read_exact(&mut got).unwrap();
        assert_eq!(got, [9, 8, 7]);
        assert!(t.is_dead(), "bit-flip scripts end in a disconnect");
        let inner = t.into_inner();
        assert_eq!(inner.w.len(), clean.len());
        assert_ne!(inner.w, clean);
    }
}
