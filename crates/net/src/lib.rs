//! TCP serving stack for hub labelings: the HLNP wire protocol, a
//! serving daemon, and a blocking client library.
//!
//! `hl-server` answers distance queries in-process; this crate puts a
//! network boundary in front of it, std-only and offline like the rest
//! of the workspace:
//!
//! - [`wire`]: versioned length-prefixed binary frames — handshake
//!   ([`wire::ServerHello`]/[`wire::ClientHello`]), requests
//!   ([`wire::Request`]), responses ([`wire::Response`]) and typed error
//!   frames. Checked reads everywhere, mirroring the HLBS store
//!   discipline: truncated, oversized or trailing-byte frames are typed
//!   errors, never panics.
//! - [`server`]: [`server::NetServer`], the daemon behind
//!   `hubserve serve` — one event-driven readiness loop (`poll(2)` via
//!   [`hl_sys`]) over nonblocking sockets, per-connection partial-frame
//!   state machines and write queues, a bounded worker pool completing
//!   requests out of order, per-socket timeouts, graceful
//!   drain-and-shutdown, metrics into the engine's existing
//!   [`hl_server::Metrics`].
//! - [`client`]: [`client::NetClient`], a blocking protocol-v1 client
//!   with connect and request timeouts, bounded retry with
//!   deterministic jittered backoff, and batch pipelining.
//! - [`mux`]: [`mux::MuxClient`], the protocol-v2 client — many
//!   concurrent in-flight requests on one connection, correlated by
//!   request id, each with its own deadline and no head-of-line
//!   blocking.
//! - [`faults`]: deterministic fault injection — a seeded
//!   [`faults::FaultPlan`] scripts byte-level corruption, length-prefix
//!   lies, truncations, slow-loris pacing and stalls against any
//!   transport, replayable from the seed alone.
//!
//! Three binaries ride on top: `hubserve` (build/query/bench/serve),
//! `netbench`, an open- and closed-loop load generator reporting
//! throughput and latency percentiles against a live daemon, and
//! `hlnp-fuzz`, a seeded protocol fuzzer that hammers a live server
//! with planned faults while liveness probes assert exact answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod faults;
pub mod mux;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient};
pub use error::NetError;
pub use faults::{FaultKind, FaultPlan, FaultyTransport, Outcome, Step};
pub use mux::MuxClient;
pub use server::{NetServer, ServerConfig, StopHandle};
pub use wire::{
    ErrorCode, Request, Response, WireError, MAX_PROTOCOL_VERSION, PROTOCOL_V2, PROTOCOL_VERSION,
};
