//! TCP serving stack for hub labelings: the HLNP wire protocol, a
//! serving daemon, and a blocking client library.
//!
//! `hl-server` answers distance queries in-process; this crate puts a
//! network boundary in front of it, std-only and offline like the rest
//! of the workspace:
//!
//! - [`wire`]: versioned length-prefixed binary frames — handshake
//!   ([`wire::ServerHello`]/[`wire::ClientHello`]), requests
//!   ([`wire::Request`]), responses ([`wire::Response`]) and typed error
//!   frames. Checked reads everywhere, mirroring the HLBS store
//!   discipline: truncated, oversized or trailing-byte frames are typed
//!   errors, never panics.
//! - [`server`]: [`server::NetServer`], the daemon behind
//!   `hubserve serve` — bounded accept loop, per-connection worker
//!   threads, per-socket timeouts, graceful drain-and-shutdown, metrics
//!   into the engine's existing [`hl_server::Metrics`].
//! - [`client`]: [`client::NetClient`], a blocking client with connect
//!   and request timeouts, bounded retry with deterministic jittered
//!   backoff, and batch pipelining.
//!
//! Two binaries ride on top: `hubserve` (build/query/bench/serve) and
//! `netbench`, an open- and closed-loop load generator reporting
//! throughput and latency percentiles against a live daemon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient};
pub use error::NetError;
pub use server::{NetServer, ServerConfig, StopHandle};
pub use wire::{ErrorCode, Request, Response, WireError, PROTOCOL_VERSION};
