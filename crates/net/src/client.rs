//! Blocking HLNP client: connect/request timeouts, bounded retry with
//! jittered exponential backoff, and batch pipelining.
//!
//! Retry policy: only socket-level failures ([`NetError::is_retryable`])
//! are retried, on a *fresh* connection, at most `max_retries` times,
//! sleeping `backoff_base * 2^attempt` (capped) plus deterministic
//! jitter from [`hl_graph::rng::Xorshift64`] between attempts — seeded
//! jitter keeps load tests reproducible while still decorrelating real
//! fleets started with distinct seeds. Protocol violations and typed
//! server errors are returned immediately: retrying a malformed frame
//! or an out-of-range vertex cannot succeed.
//!
//! All request methods are safe to retry because every HLNP request is
//! idempotent — queries are pure reads and `Shutdown` is
//! at-least-once — but `shutdown` still skips retries: a dead socket
//! after sending usually *is* the shutdown taking effect.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use hl_graph::rng::Xorshift64;
use hl_graph::{Distance, NodeId};
use hl_server::MetricsSnapshot;

use crate::error::NetError;
use crate::wire::{
    read_frame_deadline, write_frame_deadline, ClientHello, Request, Response, ServerHello,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Tunables for one client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// Read/write budget per request round-trip.
    pub request_timeout: Duration,
    /// Reconnect attempts after the first failure (0 disables retry).
    pub max_retries: u32,
    /// First backoff sleep; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub seed: u64,
    /// Per-frame payload cap (must be at least the server's).
    pub max_frame_len: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            seed: 0x68_6c_6e_65_74, // "hlnet"
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// One live, handshaken connection.
struct Conn {
    stream: TcpStream,
    hello: ServerHello,
}

/// A blocking client for one HLNP daemon.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    rng: Xorshift64,
    conn: Option<Conn>,
}

impl NetClient {
    /// Resolves `addr`, connects, and completes the handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> Result<Self, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Handshake("address resolved to nothing".into()))?;
        let mut client = NetClient {
            addr,
            config: config.clone(),
            rng: Xorshift64::seed_from_u64(config.seed),
            conn: None,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The server hello from the most recent handshake, if connected.
    pub fn server_hello(&self) -> Option<&ServerHello> {
        self.conn.as_ref().map(|c| &c.hello)
    }

    /// Number of vertices the served labeling covers (0 if disconnected,
    /// which cannot happen right after a successful `connect`).
    pub fn num_nodes(&self) -> u64 {
        self.conn.as_ref().map_or(0, |c| c.hello.num_nodes)
    }

    fn dial(&self) -> Result<Conn, NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let timeout = self.config.request_timeout;
        let mut conn = Conn {
            stream,
            hello: ServerHello {
                protocol_version: 0,
                store_version: 0,
                num_nodes: 0,
            },
        };
        let payload = read_frame_deadline(
            &mut conn.stream,
            self.config.max_frame_len,
            timeout,
            timeout,
        )?;
        let hello = ServerHello::decode(&payload)?;
        // The hello advertises the *highest* version the server speaks;
        // this client always picks v1 (lock-step), which any server with
        // a ceiling of at least 1 must honor. Servers that dropped v1
        // entirely would advertise a ceiling of 0... which none do, but
        // the check keeps the failure typed instead of a frame mess.
        if hello.protocol_version < PROTOCOL_VERSION {
            return Err(NetError::Handshake(format!(
                "server's highest protocol is {}, this client needs at least {PROTOCOL_VERSION}",
                hello.protocol_version
            )));
        }
        write_frame_deadline(
            &mut conn.stream,
            &ClientHello {
                protocol_version: PROTOCOL_VERSION,
            }
            .encode(),
            timeout,
        )?;
        conn.hello = hello;
        Ok(conn)
    }

    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        Ok(())
    }

    /// Drops the connection (the next request redials).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Backoff for retry `attempt` (0-based): `base * 2^attempt` capped,
    /// plus up to 50% deterministic jitter.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_nanos() as u64;
        let cap = self.config.backoff_cap.as_nanos() as u64;
        let exp = base.saturating_shl(attempt.min(32)).min(cap.max(1));
        let jitter = self.rng.gen_u64_below(exp / 2 + 1);
        Duration::from_nanos(exp.saturating_add(jitter))
    }

    /// One request/response round trip on the current connection.
    fn round_trip(&mut self, request: &Request) -> Result<Response, NetError> {
        self.ensure_connected()?;
        let max_len = self.config.max_frame_len;
        let timeout = self.config.request_timeout;
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| NetError::Handshake("connection vanished".into()))?;
        let result = (|| {
            write_frame_deadline(&mut conn.stream, &request.encode(), timeout)?;
            // The idle budget covers the server's compute time; once the
            // response starts flowing, the whole frame races `timeout`
            // again — a server that trickles bytes cannot pin us past
            // 2 × request_timeout.
            let payload = read_frame_deadline(&mut conn.stream, max_len, timeout, timeout)?;
            Ok(Response::decode(&payload)?)
        })();
        if result.is_err() {
            // Whatever happened, the stream position is unknown: redial.
            self.conn = None;
        }
        result
    }

    /// Sends `request`, retrying socket failures with jittered backoff.
    fn request(&mut self, request: &Request) -> Result<Response, NetError> {
        let attempts = self.config.max_retries.saturating_add(1);
        let mut last = None;
        for attempt in 0..attempts {
            match self.round_trip(request) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    last = Some(e);
                }
                Err(e) => {
                    return if attempt == 0 {
                        Err(e)
                    } else {
                        Err(NetError::RetriesExhausted {
                            attempts: attempt + 1,
                            last: Box::new(e),
                        })
                    };
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts,
            last: Box::new(last.unwrap_or_else(|| {
                NetError::Handshake("retry loop ended without an error".into())
            })),
        })
    }

    fn expect_error(resp: Response, expected: &'static str) -> NetError {
        match resp {
            Response::Error { code, message } => NetError::Remote { code, message },
            other => NetError::UnexpectedResponse {
                expected,
                got: format!("{other:?}"),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::expect_error(other, "Pong")),
        }
    }

    /// One distance query.
    pub fn query(&mut self, u: NodeId, v: NodeId) -> Result<Distance, NetError> {
        match self.request(&Request::Query { u, v })? {
            Response::Distance(d) => Ok(d),
            other => Err(Self::expect_error(other, "Distance")),
        }
    }

    /// A batch of distance queries, answered in request order.
    pub fn query_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<Distance>, NetError> {
        match self.request(&Request::QueryBatch(pairs.to_vec()))? {
            Response::DistanceBatch(ds) if ds.len() == pairs.len() => Ok(ds),
            Response::DistanceBatch(ds) => Err(NetError::UnexpectedResponse {
                expected: "DistanceBatch of matching length",
                got: format!("DistanceBatch of {} (sent {})", ds.len(), pairs.len()),
            }),
            other => Err(Self::expect_error(other, "DistanceBatch")),
        }
    }

    /// Answers a large workload by splitting it into `chunk`-pair batch
    /// frames and keeping up to `window` of them in flight on the wire,
    /// so the socket round-trip overlaps the server's work. Results come
    /// back in input order. Retried as a unit on socket failure.
    pub fn query_batch_pipelined(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        chunk: usize,
        window: usize,
    ) -> Result<Vec<Distance>, NetError> {
        let chunk = chunk.max(1);
        let window = window.max(1);
        let attempts = self.config.max_retries.saturating_add(1);
        let mut attempt = 0;
        loop {
            match self.try_pipelined(pairs, chunk, window) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) if attempt > 0 => {
                    return Err(NetError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_pipelined(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        chunk: usize,
        window: usize,
    ) -> Result<Vec<Distance>, NetError> {
        self.ensure_connected()?;
        let max_len = self.config.max_frame_len;
        let timeout = self.config.request_timeout;
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| NetError::Handshake("connection vanished".into()))?;
        let result = (|| {
            let mut out = Vec::with_capacity(pairs.len());
            let chunks: Vec<&[(NodeId, NodeId)]> = pairs.chunks(chunk).collect();
            let mut sent = 0usize;
            let mut received = 0usize;
            while received < chunks.len() {
                while sent < chunks.len() && sent - received < window {
                    let req = Request::QueryBatch(chunks[sent].to_vec());
                    write_frame_deadline(&mut conn.stream, &req.encode(), timeout)?;
                    sent += 1;
                }
                let payload = read_frame_deadline(&mut conn.stream, max_len, timeout, timeout)?;
                match Response::decode(&payload)? {
                    Response::DistanceBatch(ds) if ds.len() == chunks[received].len() => {
                        out.extend_from_slice(&ds);
                        received += 1;
                    }
                    Response::DistanceBatch(ds) => {
                        return Err(NetError::UnexpectedResponse {
                            expected: "DistanceBatch of matching length",
                            got: format!(
                                "DistanceBatch of {} (sent {})",
                                ds.len(),
                                chunks[received].len()
                            ),
                        })
                    }
                    other => return Err(Self::expect_error(other, "DistanceBatch")),
                }
            }
            Ok(out)
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Asks the daemon to mount the store at `path` (a path on the
    /// *server's* filesystem). Returns the new epoch serial and node
    /// count. Safe to retry: mounting the same store twice is idempotent
    /// (the epoch serial just advances again).
    pub fn reload(&mut self, path: &str) -> Result<(u64, u64), NetError> {
        let req = Request::Reload {
            path: path.to_string(),
        };
        match self.request(&req)? {
            Response::ReloadAck { epoch, num_nodes } => Ok((epoch, num_nodes)),
            other => Err(Self::expect_error(other, "ReloadAck")),
        }
    }

    /// Fetches the hub label of one vertex as sorted `(hub, dist)` pairs.
    pub fn label(&mut self, v: NodeId) -> Result<Vec<(NodeId, Distance)>, NetError> {
        match self.request(&Request::Label { v })? {
            Response::Label(pairs) => Ok(pairs),
            other => Err(Self::expect_error(other, "Label")),
        }
    }

    /// Fetches the labels of many vertices, in request order.
    pub fn label_batch(&mut self, vs: &[NodeId]) -> Result<Vec<Vec<(NodeId, Distance)>>, NetError> {
        match self.request(&Request::LabelBatch(vs.to_vec()))? {
            Response::LabelBatch(labels) if labels.len() == vs.len() => Ok(labels),
            Response::LabelBatch(labels) => Err(NetError::UnexpectedResponse {
                expected: "LabelBatch of matching length",
                got: format!("LabelBatch of {} (sent {})", labels.len(), vs.len()),
            }),
            other => Err(Self::expect_error(other, "LabelBatch")),
        }
    }

    /// Fetches many labels by splitting into `chunk`-vertex frames with
    /// up to `window` in flight, mirroring [`Self::query_batch_pipelined`].
    /// Label frames are far heavier than distance frames (12 bytes per
    /// hub entry), so callers should keep `chunk` small enough that a
    /// chunk's worth of labels fits the frame cap.
    pub fn label_batch_pipelined(
        &mut self,
        vs: &[NodeId],
        chunk: usize,
        window: usize,
    ) -> Result<Vec<Vec<(NodeId, Distance)>>, NetError> {
        let chunk = chunk.max(1);
        let window = window.max(1);
        let attempts = self.config.max_retries.saturating_add(1);
        let mut attempt = 0;
        loop {
            match self.try_label_pipelined(vs, chunk, window) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let pause = self.backoff(attempt);
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) if attempt > 0 => {
                    return Err(NetError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_label_pipelined(
        &mut self,
        vs: &[NodeId],
        chunk: usize,
        window: usize,
    ) -> Result<Vec<Vec<(NodeId, Distance)>>, NetError> {
        self.ensure_connected()?;
        let max_len = self.config.max_frame_len;
        let timeout = self.config.request_timeout;
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| NetError::Handshake("connection vanished".into()))?;
        let result = (|| {
            let mut out = Vec::with_capacity(vs.len());
            let chunks: Vec<&[NodeId]> = vs.chunks(chunk).collect();
            let mut sent = 0usize;
            let mut received = 0usize;
            while received < chunks.len() {
                while sent < chunks.len() && sent - received < window {
                    let req = Request::LabelBatch(chunks[sent].to_vec());
                    write_frame_deadline(&mut conn.stream, &req.encode(), timeout)?;
                    sent += 1;
                }
                let payload = read_frame_deadline(&mut conn.stream, max_len, timeout, timeout)?;
                match Response::decode(&payload)? {
                    Response::LabelBatch(labels) if labels.len() == chunks[received].len() => {
                        out.extend(labels);
                        received += 1;
                    }
                    Response::LabelBatch(labels) => {
                        return Err(NetError::UnexpectedResponse {
                            expected: "LabelBatch of matching length",
                            got: format!(
                                "LabelBatch of {} (sent {})",
                                labels.len(),
                                chunks[received].len()
                            ),
                        })
                    }
                    other => return Err(Self::expect_error(other, "LabelBatch")),
                }
            }
            Ok(out)
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Fetches the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, NetError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(s) => Ok(s),
            other => Err(Self::expect_error(other, "Metrics")),
        }
    }

    /// Asks the daemon to drain and exit. Never retried: a socket error
    /// after the request was written usually means it worked.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownAck => {
                self.conn = None;
                Ok(())
            }
            other => Err(Self::expect_error(other, "ShutdownAck")),
        }
    }
}

/// `u64::checked_shl` that saturates instead of wrapping to zero.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs >= 64 {
            u64::MAX
        } else {
            self.checked_shl(rhs).unwrap_or(u64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let mut client = NetClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            config: ClientConfig {
                backoff_base: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(100),
                ..ClientConfig::default()
            },
            rng: Xorshift64::seed_from_u64(7),
            conn: None,
        };
        let b0 = client.backoff(0);
        assert!(b0 >= Duration::from_millis(10) && b0 <= Duration::from_millis(15));
        let b3 = client.backoff(3);
        assert!(b3 >= Duration::from_millis(80));
        // Far past the cap: bounded by cap + 50% jitter.
        let b9 = client.backoff(9);
        assert!(b9 <= Duration::from_millis(150));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| NetClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            config: ClientConfig::default(),
            rng: Xorshift64::seed_from_u64(seed),
            conn: None,
        };
        let (mut a, mut b, mut c) = (mk(1), mk(1), mk(2));
        let seq_a: Vec<Duration> = (0..4).map(|i| a.backoff(i)).collect();
        let seq_b: Vec<Duration> = (0..4).map(|i| b.backoff(i)).collect();
        let seq_c: Vec<Duration> = (0..4).map(|i| c.backoff(i)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c, "different seeds must jitter differently");
    }

    #[test]
    fn connect_to_dead_port_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let err = NetClient::connect(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Duration::from_millis(200),
                max_retries: 0,
                ..ClientConfig::default()
            },
        );
        assert!(matches!(err, Err(NetError::Io(_))));
    }
}
