//! `netbench` — open- and closed-loop load generator for a live
//! `hubserve serve` daemon.
//!
//! ```text
//! netbench <addr> [--mode closed|open|mux] [--conns N] [--queries N]
//!          [--batch N] [--pipeline W] [--rate R] [--inflight N]
//!          [--sweep] [--bench-json PATH] [--seed S] [--shutdown]
//! ```
//!
//! **Closed loop** (default): `--conns` client threads issue requests
//! back to back — each thread times every round trip and the run reports
//! achieved throughput plus client-observed p50/p95/p99 from the shared
//! [`hl_server::LatencyHistogram`]. `--batch 1` sends single `Query`
//! frames; `--batch N` sends `QueryBatch` frames of N pairs;
//! `--pipeline W` keeps up to W batch frames in flight per connection.
//!
//! **Open loop**: requests are launched on a fixed schedule of `--rate`
//! requests/second spread across the connections, whether or not earlier
//! responses have returned; a schedule slot that finds its connection
//! still busy waits (the blocking client has one lane), so sustained
//! overload shows up as the reported *lag* between schedule and send —
//! the honest open-loop signal that the daemon is saturated.
//!
//! **Mux** (`--mode mux`, or just `--inflight N` which implies it):
//! each connection is a protocol-v2 [`MuxClient`] keeping up to
//! `--inflight` single-query requests in flight at once, reaping
//! completions as they land. `--sweep` runs the whole thing at in-flight
//! windows of 1, 8, 64 and 512 — the concurrency curve of one
//! connection — and `--bench-json PATH` writes every row as machine-
//! readable JSON.
//!
//! Vertex pairs are drawn uniformly from the served labeling's node
//! count (learned in the handshake), seeded per connection so runs are
//! reproducible. With `--shutdown`, the last thing the run does is send
//! a `Shutdown` frame and confirm the daemon acknowledged it.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_graph::rng::Xorshift64;
use hl_graph::NodeId;
use hl_net::wire::{Request, Response};
use hl_net::{ClientConfig, MuxClient, NetClient};
use hl_server::LatencyHistogram;

struct Opts {
    addr: String,
    mode: Mode,
    conns: usize,
    queries: usize,
    batch: usize,
    pipeline: usize,
    rate: f64,
    inflight: usize,
    sweep: bool,
    bench_json: Option<String>,
    seed: u64,
    shutdown: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Closed,
    Open,
    Mux,
}

fn usage() -> String {
    "usage: netbench <addr> [--mode closed|open|mux] [--conns N] [--queries N] \
     [--batch N] [--pipeline W] [--rate R] [--inflight N] [--sweep] \
     [--bench-json PATH] [--seed S] [--shutdown]"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut addr = None;
    let mut opts = Opts {
        addr: String::new(),
        mode: Mode::Closed,
        conns: 4,
        queries: 100_000,
        batch: 256,
        pipeline: 1,
        rate: 10_000.0,
        inflight: 64,
        sweep: false,
        bench_json: None,
        seed: 42,
        shutdown: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mode" => {
                opts.mode = match take("--mode")? {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    "mux" => Mode::Mux,
                    other => return Err(format!("--mode must be closed|open|mux, got '{other}'")),
                }
            }
            "--conns" => {
                opts.conns = take("--conns")?
                    .parse()
                    .map_err(|e| format!("--conns: {e}"))?
            }
            "--queries" => {
                opts.queries = take("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--batch" => {
                opts.batch = take("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--pipeline" => {
                opts.pipeline = take("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?
            }
            "--rate" => {
                opts.rate = take("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--inflight" => {
                opts.inflight = take("--inflight")?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?;
                // Asking for an in-flight window is asking for mux mode.
                opts.mode = Mode::Mux;
            }
            "--sweep" => {
                opts.sweep = true;
                opts.mode = Mode::Mux;
            }
            "--bench-json" => opts.bench_json = Some(take("--bench-json")?.to_string()),
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--shutdown" => opts.shutdown = true,
            other if addr.is_none() && !other.starts_with('-') => {
                addr = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    opts.addr = addr.ok_or_else(usage)?;
    if opts.conns == 0 || opts.queries == 0 || opts.batch == 0 || opts.pipeline == 0 {
        return Err("--conns, --queries, --batch and --pipeline must be positive".into());
    }
    if opts.mode == Mode::Open && opts.rate <= 0.0 {
        return Err("--rate must be positive in open-loop mode".into());
    }
    if opts.inflight == 0 {
        return Err("--inflight must be positive".into());
    }
    Ok(Opts { ..opts })
}

fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        seed,
        ..ClientConfig::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("netbench: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("netbench: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct WorkerReport {
    queries: u64,
    /// Open loop only: worst send-time lag behind schedule, in ns.
    max_lag_ns: u64,
}

fn run(opts: &Opts) -> Result<(), String> {
    // Probe connection: learn the node count, verify the daemon is up.
    let mut probe = NetClient::connect(opts.addr.as_str(), client_config(opts.seed))
        .map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
    probe.ping().map_err(|e| format!("ping failed: {e}"))?;
    let n = probe.num_nodes();
    if n < 2 {
        return Err(format!("served labeling has {n} nodes; nothing to query"));
    }
    if opts.mode == Mode::Mux {
        return run_mux(opts, &mut probe, n);
    }
    println!(
        "daemon at {} serves {n} nodes; {} mode, {} conns, {} queries, batch {}, pipeline {}",
        opts.addr,
        if opts.mode == Mode::Closed {
            "closed-loop"
        } else {
            "open-loop"
        },
        opts.conns,
        opts.queries,
        opts.batch,
        opts.pipeline,
    );

    let latency = Arc::new(LatencyHistogram::new());
    let per_conn = opts.queries.div_ceil(opts.conns);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(opts.conns);
    for worker in 0..opts.conns {
        let latency = Arc::clone(&latency);
        let addr = opts.addr.clone();
        let seed = opts.seed.wrapping_add(worker as u64).wrapping_mul(0x9e37);
        let (mode, batch, pipeline, rate, conns) =
            (opts.mode, opts.batch, opts.pipeline, opts.rate, opts.conns);
        let handle = std::thread::Builder::new()
            .name(format!("netbench-{worker}"))
            .spawn(move || -> Result<WorkerReport, String> {
                let mut client = NetClient::connect(addr.as_str(), client_config(seed))
                    .map_err(|e| format!("worker {worker} cannot connect: {e}"))?;
                let mut rng = Xorshift64::seed_from_u64(seed);
                let mut pair = move || -> (NodeId, NodeId) {
                    (
                        rng.gen_index(n as usize) as NodeId,
                        rng.gen_index(n as usize) as NodeId,
                    )
                };
                let mut done = 0u64;
                let mut max_lag_ns = 0u64;
                let open_period = Duration::from_secs_f64(conns as f64 / rate.max(1e-9));
                let t0 = Instant::now();
                let mut shot = 0u32;
                while (done as usize) < per_conn {
                    if mode == Mode::Open {
                        // Fixed schedule: slot k fires at t0 + k*period.
                        let due = open_period
                            .checked_mul(shot)
                            .unwrap_or(Duration::from_secs(3600));
                        shot = shot.saturating_add(1);
                        let now = t0.elapsed();
                        if now < due {
                            std::thread::sleep(due - now);
                        } else {
                            max_lag_ns = max_lag_ns.max((now - due).as_nanos() as u64);
                        }
                    }
                    let want = batch.min(per_conn - done as usize);
                    let sent = Instant::now();
                    if want == 1 {
                        let (u, v) = pair();
                        client
                            .query(u, v)
                            .map_err(|e| format!("worker {worker} query: {e}"))?;
                    } else {
                        let pairs: Vec<(NodeId, NodeId)> = (0..want).map(|_| pair()).collect();
                        let got = if pipeline > 1 {
                            client.query_batch_pipelined(
                                &pairs,
                                want.div_ceil(pipeline).max(1),
                                pipeline,
                            )
                        } else {
                            client.query_batch(&pairs)
                        }
                        .map_err(|e| format!("worker {worker} batch: {e}"))?;
                        if got.len() != pairs.len() {
                            return Err(format!(
                                "worker {worker}: {} answers for {} pairs",
                                got.len(),
                                pairs.len()
                            ));
                        }
                    }
                    latency.record(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    done += want as u64;
                }
                Ok(WorkerReport {
                    queries: done,
                    max_lag_ns,
                })
            })
            .map_err(|e| format!("cannot spawn worker {worker}: {e}"))?;
        workers.push(handle);
    }

    let mut total = 0u64;
    let mut max_lag_ns = 0u64;
    for handle in workers {
        let report = handle.join().map_err(|_| "worker panicked".to_string())??;
        total += report.queries;
        max_lag_ns = max_lag_ns.max(report.max_lag_ns);
    }
    let wall = started.elapsed().as_secs_f64();

    println!(
        "completed {total} queries in {wall:.3}s: {:>10.0} queries/s",
        total as f64 / wall
    );
    println!(
        "round-trip latency (per request frame, n={})",
        latency.count()
    );
    println!("  p50  < {} ns", latency.quantile(0.50));
    println!("  p95  < {} ns", latency.quantile(0.95));
    println!("  p99  < {} ns", latency.quantile(0.99));
    if opts.mode == Mode::Open {
        println!(
            "open-loop schedule lag: max {:.3} ms (0 means the daemon kept up)",
            max_lag_ns as f64 / 1e6
        );
    }

    let snapshot = probe
        .metrics()
        .map_err(|e| format!("cannot fetch server metrics: {e}"))?;
    println!("--- server metrics ---");
    println!("{}", snapshot.render_text());

    if opts.shutdown {
        probe
            .shutdown()
            .map_err(|e| format!("shutdown not acknowledged: {e}"))?;
        println!("daemon acknowledged shutdown");
    }
    Ok(())
}

/// One row of the mux concurrency curve.
struct MuxRow {
    inflight: usize,
    queries: u64,
    wall_s: f64,
    qps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

/// Multiplexed (protocol v2) load: per window size, `--conns` threads
/// each hold one [`MuxClient`] connection and keep up to `inflight`
/// single-query requests outstanding, reaping oldest-first while the
/// submit side keeps the window full.
fn run_mux(opts: &Opts, probe: &mut NetClient, n: u64) -> Result<(), String> {
    let windows: Vec<usize> = if opts.sweep {
        vec![1, 8, 64, 512]
    } else {
        vec![opts.inflight]
    };
    println!(
        "daemon at {} serves {n} nodes; mux mode, {} conns, {} queries per window, windows {:?}",
        opts.addr, opts.conns, opts.queries, windows,
    );

    let mut rows = Vec::with_capacity(windows.len());
    for &window in &windows {
        let row = mux_round(opts, n, window)?;
        println!(
            "inflight {:>4}: {} queries in {:.3}s: {:>10.0} queries/s \
             (p50 < {} ns, p95 < {} ns, p99 < {} ns)",
            row.inflight, row.queries, row.wall_s, row.qps, row.p50_ns, row.p95_ns, row.p99_ns,
        );
        rows.push(row);
    }

    if let Some(path) = &opts.bench_json {
        write_bench_json(path, opts, n, &rows).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }

    let snapshot = probe
        .metrics()
        .map_err(|e| format!("cannot fetch server metrics: {e}"))?;
    println!("--- server metrics ---");
    println!("{}", snapshot.render_text());

    if opts.shutdown {
        probe
            .shutdown()
            .map_err(|e| format!("shutdown not acknowledged: {e}"))?;
        println!("daemon acknowledged shutdown");
    }
    Ok(())
}

/// One timed run at a fixed in-flight window.
fn mux_round(opts: &Opts, n: u64, window: usize) -> Result<MuxRow, String> {
    let latency = Arc::new(LatencyHistogram::new());
    let per_conn = opts.queries.div_ceil(opts.conns);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(opts.conns);
    for worker in 0..opts.conns {
        let latency = Arc::clone(&latency);
        let addr = opts.addr.clone();
        let seed = opts
            .seed
            .wrapping_add(worker as u64)
            .wrapping_mul(0x9e37)
            .wrapping_add(window as u64);
        let handle = std::thread::Builder::new()
            .name(format!("netbench-mux-{worker}"))
            .spawn(move || -> Result<u64, String> {
                let client = MuxClient::connect(addr.as_str(), client_config(seed))
                    .map_err(|e| format!("mux worker {worker} cannot connect: {e}"))?;
                let mut rng = Xorshift64::seed_from_u64(seed);
                let mut pending: std::collections::VecDeque<(u64, Instant)> =
                    std::collections::VecDeque::with_capacity(window);
                let mut submitted = 0usize;
                let mut done = 0u64;
                while (done as usize) < per_conn {
                    // Keep the window full before reaping anything.
                    while submitted < per_conn && pending.len() < window {
                        let u = rng.gen_index(n as usize) as NodeId;
                        let v = rng.gen_index(n as usize) as NodeId;
                        let sent = Instant::now();
                        let id = client
                            .submit(&Request::Query { u, v })
                            .map_err(|e| format!("mux worker {worker} submit: {e}"))?;
                        pending.push_back((id, sent));
                        submitted += 1;
                    }
                    let Some((id, sent)) = pending.pop_front() else {
                        break;
                    };
                    match client
                        .wait(id, Duration::from_secs(30))
                        .map_err(|e| format!("mux worker {worker} wait({id}): {e}"))?
                    {
                        Response::Distance(_) => {}
                        other => {
                            return Err(format!(
                                "mux worker {worker}: expected a Distance for id {id}, \
                                 got {other:?}"
                            ))
                        }
                    }
                    latency.record(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    done += 1;
                }
                Ok(done)
            })
            .map_err(|e| format!("cannot spawn mux worker {worker}: {e}"))?;
        workers.push(handle);
    }

    let mut total = 0u64;
    for handle in workers {
        total += handle.join().map_err(|_| "worker panicked".to_string())??;
    }
    let wall_s = started.elapsed().as_secs_f64();
    Ok(MuxRow {
        inflight: window,
        queries: total,
        wall_s,
        qps: total as f64 / wall_s.max(1e-9),
        p50_ns: latency.quantile(0.50),
        p95_ns: latency.quantile(0.95),
        p99_ns: latency.quantile(0.99),
    })
}

/// Hand-rolled JSON (the workspace is dependency-free): one object with
/// the run's shape and one row per in-flight window.
fn write_bench_json(path: &str, opts: &Opts, n: u64, rows: &[MuxRow]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"netbench-mux\",\n");
    s.push_str(&format!("  \"n\": {n},\n"));
    s.push_str(&format!("  \"nodes\": {n},\n"));
    s.push_str(&format!(
        "  \"nproc\": {},\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    s.push_str(&format!("  \"conns\": {},\n", opts.conns));
    s.push_str(&format!("  \"queries_per_window\": {},\n", opts.queries));
    s.push_str(&format!("  \"seed\": {},\n", opts.seed));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"inflight\": {}, \"queries\": {}, \"wall_s\": {:.6}, \
             \"queries_per_s\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.inflight,
            r.queries,
            r.wall_s,
            r.qps,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The p50/p95/p99 lines above are nearest-rank quantiles out of
    // `hl_server::LatencyHistogram`. These pin the math on the samples a
    // load run actually produces: n=1 (a single probe), tiny n, and the
    // empty histogram of a zero-duration run.

    #[test]
    fn report_quantiles_single_observation() {
        let h = LatencyHistogram::new();
        h.record(100); // bucket (64, 128]
        assert_eq!(h.quantile(0.50), 128);
        assert_eq!(h.quantile(0.95), 128);
        assert_eq!(h.quantile(0.99), 128);
    }

    #[test]
    fn report_quantiles_four_observations() {
        let h = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        // Nearest rank: p50 is the 2nd of 4 (10 ns), p95 and p99 the 4th.
        assert_eq!(h.quantile(0.50), 16);
        assert_eq!(h.quantile(0.95), 1024);
        assert_eq!(h.quantile(0.99), 1024);
    }

    #[test]
    fn report_quantiles_empty_run() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.50), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn report_quantiles_do_not_overshoot_on_f64_noise() {
        // 50 fast + 50 slow: p50 must be the fast bucket's bound — a
        // float-rounded rank of 51 would report the slow bucket.
        let h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record(100);
        }
        for _ in 0..50 {
            h.record(1_000_000);
        }
        assert_eq!(h.quantile(0.50), 128);
    }
}
