//! `hlnp-fuzz` — seeded, bounded fuzzer for the HLNP serving stack.
//!
//! ```text
//! hlnp-fuzz [--seed S] [--iters N] [--nodes N] [--probe-every K]
//!           [--max-seconds T]
//! ```
//!
//! Three campaigns, all driven from one seed so any finding replays
//! exactly:
//!
//! 1. **Network**: a live [`NetServer`] over a real labeling is hammered
//!    with `--iters` connections, each playing a [`FaultPlan`] script —
//!    bit flips, truncations, length-prefix lies, handshake garbage,
//!    slow-loris pacing, mid-frame stalls. Every `--probe-every`
//!    iterations a clean [`NetClient`] probe asserts *exact* distances
//!    against BFS ground truth: the server must stay both alive and
//!    correct while being abused.
//! 2. **Mux**: the same live server under protocol-v2 abuse. Each
//!    iteration handshakes v2 cleanly, then plays a mux-specific
//!    [`FaultKind::MUX`] script — many-id streams chopped into
//!    arbitrary chunks, duplicate ids, shuffled frames, id-field bit
//!    flips, runt frames too short for an id. Clean [`MuxClient`]
//!    probes submit a window of queries and reap them newest-first,
//!    asserting BFS-exact answers under out-of-order completion. A
//!    handshake matrix then pins the negotiation: hello 1 serves v1
//!    framing, hello 2 serves v2 framing, hello 3 gets a typed
//!    `VersionMismatch`, garbage gets a typed `Malformed` — and the
//!    rejections close the connection.
//! 3. **Store**: both serialized HLBS images take abuse. The v1
//!    (γ-coded) image gets seeded byte flips (the checksum's job),
//!    crafted flips with a refreshed checksum (the decoder's job), and
//!    random truncations. The v2 (flat-arena) image additionally gets
//!    per-section crafted flips with *that section's* checksum and the
//!    table checksum both refreshed, plus misaligned-section-offset
//!    mutations; because every v2 byte sits under a checksum or the
//!    zero-padding rule, a blind flip that parses anyway is itself a
//!    defect.
//! 4. **Wire**: random payloads through every frame decoder.
//!
//! Any panic, hang, wrong answer, or silently-accepted corruption is a
//! defect. Exit codes: 0 clean, 1 defect found, 2 usage or the
//! `--max-seconds` wall-clock guard fired (a hang somewhere in the
//! stack).

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::rng::Xorshift64;
use hl_graph::{bfs, generators, Distance, NodeId};
use hl_net::faults::{apply_script, FaultConfig, FaultKind, FaultPlan, Outcome};
use hl_net::wire::{
    encode_mux, read_frame, split_mux, write_frame, ClientHello, ErrorCode, Request, Response,
    ServerHello, DEFAULT_MAX_FRAME_LEN, MAX_PROTOCOL_VERSION, PROTOCOL_V2, PROTOCOL_VERSION,
};
use hl_net::{ClientConfig, MuxClient, NetClient, NetServer, ServerConfig};
use hl_server::{store, store_v2, AnyStore, FlatStore, LabelStore, QueryEngine};

struct Opts {
    seed: u64,
    iters: usize,
    nodes: usize,
    probe_every: usize,
    max_seconds: u64,
}

fn usage() -> String {
    "usage: hlnp-fuzz [--seed S] [--iters N] [--nodes N] [--probe-every K] [--max-seconds T]"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 5,
        iters: 10_000,
        nodes: 256,
        probe_every: 32,
        // Sized for the default 10k-iteration profile on a slow shared
        // core — the v1 + mux network campaigns alone are ~6 minutes
        // there. CI passes an explicit, tighter guard.
        max_seconds: 900,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--iters" => {
                opts.iters = take("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--nodes" => {
                opts.nodes = take("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--probe-every" => {
                opts.probe_every = take("--probe-every")?
                    .parse()
                    .map_err(|e| format!("--probe-every: {e}"))?
            }
            "--max-seconds" => {
                opts.max_seconds = take("--max-seconds")?
                    .parse()
                    .map_err(|e| format!("--max-seconds: {e}"))?
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    if opts.nodes < 8 {
        return Err("--nodes must be at least 8".to_string());
    }
    if opts.probe_every == 0 {
        return Err("--probe-every must be positive".to_string());
    }
    Ok(opts)
}

/// A defect (exit 1) or the wall-clock guard (exit 2).
enum Failure {
    Defect(String),
    Timeout(String),
}

#[derive(Default)]
struct Summary {
    fault_iterations: usize,
    by_kind: Vec<(FaultKind, usize)>,
    peer_closed: usize,
    probes: usize,
    probe_queries: usize,
    mux_fault_iterations: usize,
    mux_probes: usize,
    mux_probe_queries: usize,
    handshake_matrix_rounds: usize,
    store_mutations: usize,
    store_parses_survived: usize,
    store_v2_mutations: usize,
    store_v2_parses_survived: usize,
    wire_decodes: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(s) => {
            println!(
                "hlnp-fuzz: clean. {} fault iterations ({} cut off by the server), \
                 {} probes / {} exact answers verified, {} mux fault iterations, \
                 {} mux probes / {} out-of-order answers verified, \
                 {} handshake matrix rounds, {} v1 store mutations \
                 ({} parsed anyway, none panicked), {} v2 store mutations \
                 ({} parsed anyway, none panicked), {} wire decodes.",
                s.fault_iterations,
                s.peer_closed,
                s.probes,
                s.probe_queries,
                s.mux_fault_iterations,
                s.mux_probes,
                s.mux_probe_queries,
                s.handshake_matrix_rounds,
                s.store_mutations,
                s.store_parses_survived,
                s.store_v2_mutations,
                s.store_v2_parses_survived,
                s.wire_decodes,
            );
            let kinds: Vec<String> = s
                .by_kind
                .iter()
                .map(|(k, n)| format!("{}={}", k.name(), n))
                .collect();
            println!("hlnp-fuzz: kind mix: {}", kinds.join(" "));
            ExitCode::SUCCESS
        }
        Err(Failure::Defect(msg)) => {
            eprintln!("hlnp-fuzz: DEFECT (seed {}): {msg}", opts.seed);
            ExitCode::from(1)
        }
        Err(Failure::Timeout(msg)) => {
            eprintln!(
                "hlnp-fuzz: wall-clock guard ({}s) fired: {msg}",
                opts.max_seconds
            );
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Opts) -> Result<Summary, Failure> {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(opts.max_seconds);
    let mut summary = Summary::default();

    // Ground truth and the serving stack under test. The store round-trip
    // (labeling -> HLBS bytes -> engine) is deliberate: the same image
    // feeds the store campaign below.
    let g = generators::connected_gnm(opts.nodes, opts.nodes, opts.seed ^ 0x9e37_79b9);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let label_store = LabelStore::from_labeling(&hl);
    let mut store_bytes = Vec::new();
    label_store
        .write_to(&mut store_bytes)
        .map_err(|e| Failure::Defect(format!("serializing the store: {e}")))?;
    let store_v2_bytes = label_store
        .to_flat()
        .map(|flat| FlatStore::from_flat(flat).encode())
        .map_err(|e| Failure::Defect(format!("serializing the v2 store: {e}")))?;
    let engine = QueryEngine::from_store(&label_store, 2)
        .map_err(|e| Failure::Defect(format!("building the engine: {e}")))?;

    let sources: Vec<NodeId> = (0..8.min(opts.nodes) as NodeId).collect();
    let truth: Vec<Vec<Distance>> = sources.iter().map(|&s| bfs::bfs_distances(&g, s)).collect();

    let config = ServerConfig {
        max_connections: 32,
        read_timeout: Duration::from_millis(800),
        write_timeout: Duration::from_secs(1),
        frame_timeout: Duration::from_millis(300),
        max_frame_len: DEFAULT_MAX_FRAME_LEN,
        // Found by this very fuzzer: with remote shutdown on, any
        // mutated frame that happens to decode as the one-byte Shutdown
        // opcode stops the daemon mid-campaign. Reload is equally
        // dangerous: a mutated frame decoding as Reload would swap the
        // served store (or spray error frames about unreadable paths).
        allow_remote_shutdown: false,
        allow_remote_reload: false,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(Arc::new(engine), "127.0.0.1:0", config)
        .map_err(|e| Failure::Defect(format!("binding the server: {e}")))?;
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    // Short pauses keep thousands of iterations inside the CI budget
    // while still being long against the server's 300 ms frame budget.
    let fault_config = FaultConfig {
        loris_pace: Duration::from_millis(25),
        loris_max_bytes: 6,
        stall: Duration::from_millis(60),
    };
    let mut plan = FaultPlan::with_config(opts.seed, fault_config);
    let mut rng = Xorshift64::seed_from_u64(opts.seed ^ 0xd1b5_4a32_d192_ed03);
    let mut kind_counts = std::collections::HashMap::new();

    let result = (|| -> Result<(), Failure> {
        for i in 0..opts.iters {
            if Instant::now() > deadline {
                return Err(Failure::Timeout(format!(
                    "network campaign stuck at iteration {i} of {}",
                    opts.iters
                )));
            }
            let mut kind = plan.pick_kind();
            // Timing faults sleep; keep them in the mix but rare enough
            // that iteration counts stay cheap.
            if matches!(kind, FaultKind::SlowLoris | FaultKind::Stall) && rng.gen_index(8) != 0 {
                kind = FaultKind::ALL[rng.gen_index(6)]; // the six cheap kinds lead ALL
            }
            *kind_counts.entry(kind).or_insert(0usize) += 1;
            match fault_iteration(addr, &mut plan, kind, &mut rng, opts.nodes as NodeId) {
                Ok(Outcome::PeerClosed) => summary.peer_closed += 1,
                Ok(_) => {}
                Err(e) => {
                    return Err(Failure::Defect(format!(
                        "iteration {i} ({}): server unreachable — {e}",
                        kind.name()
                    )))
                }
            }
            summary.fault_iterations += 1;
            if i % opts.probe_every == 0 {
                probe(addr, &sources, &truth, &mut rng, opts.seed)?;
                summary.probes += 1;
                summary.probe_queries += PROBE_QUERIES;
            }
        }
        // One last probe after all the abuse.
        probe(addr, &sources, &truth, &mut rng, opts.seed)?;
        summary.probes += 1;
        summary.probe_queries += PROBE_QUERIES;

        // Mux campaign: protocol-v2 abuse against the same live server.
        // Half the v1 iteration count — mux scripts mostly *complete*
        // (no disconnect), so each iteration also drains real answers.
        for i in 0..opts.iters / 2 {
            if Instant::now() > deadline {
                return Err(Failure::Timeout(format!(
                    "mux campaign stuck at iteration {i} of {}",
                    opts.iters / 2
                )));
            }
            let kind = plan.pick_mux_kind();
            *kind_counts.entry(kind).or_insert(0usize) += 1;
            match mux_fault_iteration(addr, &mut plan, kind, &mut rng, opts.nodes as NodeId) {
                Ok(Outcome::PeerClosed) => summary.peer_closed += 1,
                Ok(_) => {}
                Err(e) => {
                    return Err(Failure::Defect(format!(
                        "mux iteration {i} ({}): server unreachable — {e}",
                        kind.name()
                    )))
                }
            }
            summary.mux_fault_iterations += 1;
            if i % opts.probe_every == 0 {
                mux_probe(addr, &sources, &truth, &mut rng)?;
                summary.mux_probes += 1;
                summary.mux_probe_queries += MUX_PROBE_QUERIES;
            }
        }

        // Handshake version matrix, then one last mux probe.
        for _ in 0..8 {
            if Instant::now() > deadline {
                return Err(Failure::Timeout("handshake matrix stuck".to_string()));
            }
            handshake_matrix(addr, &mut rng)?;
            summary.handshake_matrix_rounds += 1;
        }
        mux_probe(addr, &sources, &truth, &mut rng)?;
        summary.mux_probes += 1;
        summary.mux_probe_queries += MUX_PROBE_QUERIES;
        Ok(())
    })();

    stop.stop();
    let serve_result = server_thread.join();
    if let Err(failure) = result {
        // The server's own exit usually explains a dead accept loop.
        return Err(match (failure, serve_result) {
            (Failure::Defect(m), Ok(Err(e))) => {
                Failure::Defect(format!("{m}; server exited with error: {e}"))
            }
            (Failure::Defect(m), Err(_)) => Failure::Defect(format!("{m}; server thread panicked")),
            (f, _) => f,
        });
    }
    match serve_result {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(Failure::Defect(format!("server exited with error: {e}"))),
        Err(_) => return Err(Failure::Defect("server thread panicked".to_string())),
    }

    let mut by_kind: Vec<(FaultKind, usize)> = kind_counts.into_iter().collect();
    by_kind.sort_by_key(|&(k, _)| k.name());
    summary.by_kind = by_kind;

    store_campaign(&store_bytes, opts, deadline, &mut rng, &mut summary)?;
    store_v2_campaign(&store_v2_bytes, opts, deadline, &mut rng, &mut summary)?;
    wire_campaign(opts, deadline, &mut rng, &mut summary)?;
    Ok(summary)
}

/// One hostile connection: handshake bytes plus a few valid request
/// frames, rewritten by `kind`, then a bounded drain of whatever the
/// server answers. Only failure to *connect* is an error — that means
/// the accept loop is gone.
fn fault_iteration(
    addr: SocketAddr,
    plan: &mut FaultPlan,
    kind: FaultKind,
    rng: &mut Xorshift64,
    num_nodes: NodeId,
) -> std::io::Result<Outcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(300)))?;
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    // The server speaks first; its hello is not part of the fault script.
    let _ = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN);

    let clean = clean_request_stream(rng, num_nodes);
    let steps = plan.script(kind, &clean);
    let outcome = apply_script(&mut stream, &steps);

    // Drain responses (typed errors, answers, or EOF) so the iteration
    // observes the server's reaction instead of racing its own reset.
    // Short timeout: on faults the server survives (e.g. a Malformed
    // error frame on a live connection) the drain must not stall the
    // whole campaign waiting for bytes that will never come.
    stream.set_read_timeout(Some(Duration::from_millis(30)))?;
    let mut buf = [0u8; 512];
    for _ in 0..16 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(outcome)
}

/// A well-formed HLNP byte stream: client hello, then 1–3 requests.
fn clean_request_stream(rng: &mut Xorshift64, num_nodes: NodeId) -> Vec<u8> {
    let mut buf = Vec::new();
    let hello = ClientHello {
        protocol_version: PROTOCOL_VERSION,
    };
    let _ = write_frame(&mut buf, &hello.encode());
    for _ in 0..1 + rng.gen_index(3) {
        let req = match rng.gen_index(3) {
            0 => Request::Ping,
            1 => Request::Query {
                u: rng.gen_index(num_nodes as usize) as NodeId,
                v: rng.gen_index(num_nodes as usize) as NodeId,
            },
            _ => {
                let pairs = (0..1 + rng.gen_index(8))
                    .map(|_| {
                        (
                            rng.gen_index(num_nodes as usize) as NodeId,
                            rng.gen_index(num_nodes as usize) as NodeId,
                        )
                    })
                    .collect();
                Request::QueryBatch(pairs)
            }
        };
        let _ = write_frame(&mut buf, &req.encode());
    }
    buf
}

/// One hostile v2 connection: a *clean* v2 handshake (the matrix covers
/// negotiation abuse), then a multi-id mux request stream rewritten by
/// `kind`, then a bounded drain. Only failure to connect is an error.
fn mux_fault_iteration(
    addr: SocketAddr,
    plan: &mut FaultPlan,
    kind: FaultKind,
    rng: &mut Xorshift64,
    num_nodes: NodeId,
) -> std::io::Result<Outcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(300)))?;
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    let _ = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN);
    let hello = ClientHello {
        protocol_version: PROTOCOL_V2,
    };
    if write_frame(&mut stream, &hello.encode()).is_err() {
        return Ok(Outcome::PeerClosed);
    }

    let clean = clean_mux_stream(rng, num_nodes);
    let steps = plan.script(kind, &clean);
    let outcome = apply_script(&mut stream, &steps);

    // Bounded drain: mux scripts mostly complete, so the server answers
    // every well-formed id — read those (and any typed errors) without
    // stalling the campaign on a quiet socket.
    stream.set_read_timeout(Some(Duration::from_millis(30)))?;
    let mut buf = [0u8; 512];
    for _ in 0..16 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(outcome)
}

/// A well-formed v2 request stream: 2–6 mux-framed requests with
/// distinct ids (the handshake is sent separately, unfaulted).
fn clean_mux_stream(rng: &mut Xorshift64, num_nodes: NodeId) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut id: u64 = 0;
    for _ in 0..2 + rng.gen_index(5) {
        id += 1;
        let req = match rng.gen_index(3) {
            0 => Request::Ping,
            1 => Request::Query {
                u: rng.gen_index(num_nodes as usize) as NodeId,
                v: rng.gen_index(num_nodes as usize) as NodeId,
            },
            _ => {
                let pairs = (0..1 + rng.gen_index(8))
                    .map(|_| {
                        (
                            rng.gen_index(num_nodes as usize) as NodeId,
                            rng.gen_index(num_nodes as usize) as NodeId,
                        )
                    })
                    .collect();
                Request::QueryBatch(pairs)
            }
        };
        let _ = write_frame(&mut buf, &encode_mux(id, &req.encode()));
    }
    buf
}

const MUX_PROBE_QUERIES: usize = 16;

/// A clean [`MuxClient`] submitting a window of queries and reaping them
/// newest-first: liveness, correctness, *and* out-of-order completion
/// in one check. Any error or wrong answer is a defect.
fn mux_probe(
    addr: SocketAddr,
    sources: &[NodeId],
    truth: &[Vec<Distance>],
    rng: &mut Xorshift64,
) -> Result<(), Failure> {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(2),
        ..ClientConfig::default()
    };
    let client = MuxClient::connect(addr, config)
        .map_err(|e| Failure::Defect(format!("mux probe cannot connect: {e}")))?;
    let n = truth[0].len();
    let mut pending = Vec::with_capacity(MUX_PROBE_QUERIES);
    for _ in 0..MUX_PROBE_QUERIES {
        let si = rng.gen_index(sources.len());
        let v = rng.gen_index(n) as NodeId;
        let id = client
            .submit(&Request::Query { u: sources[si], v })
            .map_err(|e| Failure::Defect(format!("mux probe submit failed: {e}")))?;
        pending.push((id, si, v));
    }
    for (id, si, v) in pending.into_iter().rev() {
        match client.wait(id, Duration::from_secs(2)) {
            Ok(Response::Distance(d)) => {
                let want = truth[si][v as usize];
                if d != want {
                    return Err(Failure::Defect(format!(
                        "mux probe wrong answer: d({}, {v}) = {d}, BFS says {want}",
                        sources[si]
                    )));
                }
            }
            Ok(other) => {
                return Err(Failure::Defect(format!(
                    "mux probe expected a Distance for id {id}, got {other:?}"
                )))
            }
            Err(e) => return Err(Failure::Defect(format!("mux probe wait({id}) failed: {e}"))),
        }
    }
    Ok(())
}

/// Connects and consumes the server hello, asserting it advertises the
/// v2 ceiling. The shared front half of every handshake-matrix case.
fn matrix_connect(addr: SocketAddr) -> Result<TcpStream, Failure> {
    let defect = |m: String| Failure::Defect(format!("handshake matrix: {m}"));
    let mut s = TcpStream::connect(addr).map_err(|e| defect(format!("connect: {e}")))?;
    s.set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| defect(format!("set timeout: {e}")))?;
    s.set_write_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| defect(format!("set timeout: {e}")))?;
    let payload = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN)
        .map_err(|e| defect(format!("reading server hello: {e}")))?;
    let hello =
        ServerHello::decode(&payload).map_err(|e| defect(format!("bad server hello: {e}")))?;
    if hello.protocol_version != MAX_PROTOCOL_VERSION {
        return Err(defect(format!(
            "server hello advertises ceiling {}, want {MAX_PROTOCOL_VERSION}",
            hello.protocol_version
        )));
    }
    Ok(s)
}

/// Reads one response frame and requires a typed error of `code`,
/// followed by the server closing the connection.
fn expect_error_then_close(mut s: TcpStream, code: ErrorCode, case: &str) -> Result<(), Failure> {
    let defect = |m: String| Failure::Defect(format!("handshake matrix [{case}]: {m}"));
    let payload = read_frame(&mut s, DEFAULT_MAX_FRAME_LEN)
        .map_err(|e| defect(format!("reading the rejection: {e}")))?;
    match Response::decode(&payload) {
        Ok(Response::Error { code: got, message }) if got == code => {
            // The server must also hang up: the next read is EOF.
            let mut byte = [0u8; 1];
            match s.read(&mut byte) {
                Ok(0) => {
                    let _ = message;
                    Ok(())
                }
                Ok(_) => Err(defect("server kept talking after the rejection".into())),
                Err(e) => Err(defect(format!("waiting for the close: {e}"))),
            }
        }
        Ok(other) => Err(defect(format!("expected {code:?}, got {other:?}"))),
        Err(e) => Err(defect(format!("undecodable rejection frame: {e}"))),
    }
}

/// One pass of the v1-vs-v2 handshake matrix: hello 1 serves v1
/// framing, hello 2 serves v2 framing, hello 3 draws `VersionMismatch`,
/// and a non-hello first frame draws `Malformed` — both rejections
/// closing the connection.
fn handshake_matrix(addr: SocketAddr, rng: &mut Xorshift64) -> Result<(), Failure> {
    // Hello 1: plain v1 framing; a ping comes back as a bare Pong.
    let mut s = matrix_connect(addr)?;
    let defect = |m: String| Failure::Defect(format!("handshake matrix [v1]: {m}"));
    let hello = ClientHello {
        protocol_version: PROTOCOL_VERSION,
    };
    write_frame(&mut s, &hello.encode()).map_err(|e| defect(format!("hello: {e}")))?;
    write_frame(&mut s, &Request::Ping.encode()).map_err(|e| defect(format!("ping: {e}")))?;
    let payload =
        read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).map_err(|e| defect(format!("pong: {e}")))?;
    match Response::decode(&payload) {
        Ok(Response::Pong) => {}
        other => return Err(defect(format!("expected a bare Pong, got {other:?}"))),
    }
    drop(s);

    // Hello 2: mux framing; the pong comes back under the request's id.
    let mut s = matrix_connect(addr)?;
    let defect = |m: String| Failure::Defect(format!("handshake matrix [v2]: {m}"));
    let hello = ClientHello {
        protocol_version: PROTOCOL_V2,
    };
    write_frame(&mut s, &hello.encode()).map_err(|e| defect(format!("hello: {e}")))?;
    let id = 1 + (rng.next_u64() >> 1);
    write_frame(&mut s, &encode_mux(id, &Request::Ping.encode()))
        .map_err(|e| defect(format!("mux ping: {e}")))?;
    let payload =
        read_frame(&mut s, DEFAULT_MAX_FRAME_LEN).map_err(|e| defect(format!("mux pong: {e}")))?;
    let (got_id, inner) = split_mux(&payload).map_err(|e| defect(format!("split: {e}")))?;
    if got_id != id {
        return Err(defect(format!("pong under id {got_id}, want {id}")));
    }
    match Response::decode(inner) {
        Ok(Response::Pong) => {}
        other => {
            return Err(defect(format!(
                "expected Pong under id {id}, got {other:?}"
            )))
        }
    }
    drop(s);

    // Hello 3: above the ceiling — a typed VersionMismatch, then close.
    let mut s = matrix_connect(addr)?;
    let defect = |m: String| Failure::Defect(format!("handshake matrix [v3]: {m}"));
    let hello = ClientHello {
        protocol_version: MAX_PROTOCOL_VERSION + 1,
    };
    write_frame(&mut s, &hello.encode()).map_err(|e| defect(format!("hello: {e}")))?;
    expect_error_then_close(s, ErrorCode::VersionMismatch, "v3")?;

    // Garbage hello: a first frame that is not a hello at all — typed
    // Malformed, then close. (First byte pinned off the hello opcode so
    // random bytes cannot accidentally spell a valid handshake.)
    let mut s = matrix_connect(addr)?;
    let defect = |m: String| Failure::Defect(format!("handshake matrix [garbage]: {m}"));
    let mut junk = vec![0xFF];
    for _ in 0..rng.gen_index(16) {
        junk.push(rng.next_u64() as u8);
    }
    write_frame(&mut s, &junk).map_err(|e| defect(format!("junk hello: {e}")))?;
    expect_error_then_close(s, ErrorCode::Malformed, "garbage")?;

    Ok(())
}

const PROBE_QUERIES: usize = 4 + 16;

/// A clean client asserting exact BFS distances: the liveness *and*
/// correctness check. Any error or wrong answer here is a defect.
fn probe(
    addr: SocketAddr,
    sources: &[NodeId],
    truth: &[Vec<Distance>],
    rng: &mut Xorshift64,
    seed: u64,
) -> Result<(), Failure> {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(2),
        max_retries: 2,
        seed,
        ..ClientConfig::default()
    };
    let mut client = NetClient::connect(addr, config)
        .map_err(|e| Failure::Defect(format!("liveness probe cannot connect: {e}")))?;
    let n = truth[0].len();
    for _ in 0..4 {
        let si = rng.gen_index(sources.len());
        let v = rng.gen_index(n) as NodeId;
        let want = truth[si][v as usize];
        let got = client
            .query(sources[si], v)
            .map_err(|e| Failure::Defect(format!("probe query failed: {e}")))?;
        if got != want {
            return Err(Failure::Defect(format!(
                "wrong answer: d({}, {v}) = {got}, BFS says {want}",
                sources[si]
            )));
        }
    }
    let pairs: Vec<(NodeId, NodeId)> = (0..16)
        .map(|_| {
            let si = rng.gen_index(sources.len());
            (sources[si], rng.gen_index(n) as NodeId)
        })
        .collect();
    let got = client
        .query_batch_pipelined(&pairs, 4, 2)
        .map_err(|e| Failure::Defect(format!("probe batch failed: {e}")))?;
    for (&(u, v), &d) in pairs.iter().zip(&got) {
        let si = sources.iter().position(|&s| s == u).unwrap_or(0);
        let want = truth[si][v as usize];
        if d != want {
            return Err(Failure::Defect(format!(
                "wrong batch answer: d({u}, {v}) = {d}, BFS says {want}"
            )));
        }
    }
    Ok(())
}

/// Parses and fully decodes a mutated store image inside `catch_unwind`:
/// errors are expected, panics are defects. Returns whether it parsed.
fn check_store_bytes(bytes: &[u8]) -> Result<bool, Failure> {
    panic::catch_unwind(AssertUnwindSafe(|| match LabelStore::parse(bytes) {
        Ok(s) => {
            for v in 0..s.num_nodes() {
                let _ = s.decode_label(v as NodeId);
            }
            let _ = s.to_flat();
            if s.num_nodes() >= 2 {
                let _ = s.query(0, 1);
            }
            true
        }
        Err(_) => false,
    }))
    .map_err(|_| Failure::Defect("panic while parsing/decoding a mutated store".to_string()))
}

/// Seeded byte flips (the checksum's job), crafted flips with a
/// refreshed checksum (the decoder's job), and random truncations.
fn store_campaign(
    clean: &[u8],
    opts: &Opts,
    deadline: Instant,
    rng: &mut Xorshift64,
    summary: &mut Summary,
) -> Result<(), Failure> {
    let rounds = (opts.iters / 4).max(64);
    for i in 0..rounds {
        if Instant::now() > deadline {
            return Err(Failure::Timeout(format!(
                "store campaign stuck at round {i} of {rounds}"
            )));
        }
        // Blind flip: whatever it hits, nothing may panic.
        let mut bytes = clean.to_vec();
        let at = rng.gen_index(bytes.len());
        bytes[at] ^= 1 << rng.gen_index(8);
        if check_store_bytes(&bytes)? {
            summary.store_parses_survived += 1;
        }
        summary.store_mutations += 1;

        // Crafted flip: corrupt the body, then make the checksum agree —
        // this is the adversary the checked decoder exists for.
        let mut bytes = clean.to_vec();
        if bytes.len() > store::HEADER_LEN {
            let body = store::HEADER_LEN + rng.gen_index(bytes.len() - store::HEADER_LEN);
            bytes[body] ^= 1 << rng.gen_index(8);
            let sum = store::fnv1a64(&bytes[store::HEADER_LEN..]);
            bytes[24..32].copy_from_slice(&sum.to_le_bytes());
            if check_store_bytes(&bytes)? {
                summary.store_parses_survived += 1;
            }
            summary.store_mutations += 1;
        }

        // Truncation at a random cut.
        let mut bytes = clean.to_vec();
        bytes.truncate(rng.gen_index(bytes.len()));
        if check_store_bytes(&bytes)? {
            summary.store_parses_survived += 1;
        }
        summary.store_mutations += 1;
    }
    Ok(())
}

/// Parses a mutated v2 store through the version-sniffing [`AnyStore`]
/// entry point (the path a daemon takes) inside `catch_unwind`, then
/// walks the decoded arena. Errors are expected, panics are defects.
/// Returns whether it parsed.
fn check_store_v2_bytes(bytes: &[u8]) -> Result<bool, Failure> {
    panic::catch_unwind(AssertUnwindSafe(|| {
        match AnyStore::parse(bytes).and_then(AnyStore::into_flat) {
            Ok(flat) => {
                for v in 0..flat.num_nodes() as NodeId {
                    let _ = flat.hubs_of(v);
                    let _ = flat.dists_of(v);
                }
                if flat.num_nodes() >= 2 {
                    let _ = flat.query(0, 1);
                }
                true
            }
            Err(_) => false,
        }
    }))
    .map_err(|_| Failure::Defect("panic while parsing/decoding a mutated v2 store".to_string()))
}

/// The byte range of the v2 section table record for section `s`.
fn v2_record(s: usize) -> std::ops::Range<usize> {
    // Header layout: table at 32, three 24-byte (offset, len, fnv) records.
    let rec = 32 + s * 24;
    rec..rec + 24
}

/// Refreshes the table checksum at bytes `[24..32)` after a table edit.
fn refresh_v2_table_checksum(bytes: &mut [u8]) {
    let sum = store::fnv1a64(&bytes[32..store_v2::HEADER_LEN]);
    bytes[24..32].copy_from_slice(&sum.to_le_bytes());
}

/// The v2 image under four seeded attacks per round:
///
/// * **blind flip** — every byte is covered by the table checksum, a
///   section checksum, a validated header field, or the zero-padding
///   rule, so a flip that still parses is a defect in itself;
/// * **crafted section flip** — a section body byte is flipped and both
///   that section's checksum record and the table checksum are refreshed,
///   leaving only the structural pass to object (it may legitimately
///   accept, e.g. a flipped distance value is still a valid arena);
/// * **misaligned section offset** — a table record's file offset is
///   nudged off the 64-byte grid with checksums refreshed, which the
///   record validator must reject;
/// * **truncation** — the file must end exactly where `dists` does.
///
/// Everything must come back as a typed error or a clean parse — never a
/// panic.
fn store_v2_campaign(
    clean: &[u8],
    opts: &Opts,
    deadline: Instant,
    rng: &mut Xorshift64,
    summary: &mut Summary,
) -> Result<(), Failure> {
    let rounds = (opts.iters / 4).max(64);
    for i in 0..rounds {
        if Instant::now() > deadline {
            return Err(Failure::Timeout(format!(
                "v2 store campaign stuck at round {i} of {rounds}"
            )));
        }
        // Blind flip: must be rejected, wherever it lands.
        let mut bytes = clean.to_vec();
        let at = rng.gen_index(bytes.len());
        bytes[at] ^= 1 << rng.gen_index(8);
        if check_store_v2_bytes(&bytes)? {
            return Err(Failure::Defect(format!(
                "v2 store accepted a blind flip at byte {at} (round {i})"
            )));
        }
        summary.store_v2_mutations += 1;

        // Crafted flip: corrupt one section body, then make both the
        // section checksum and the table checksum agree.
        let mut bytes = clean.to_vec();
        let s = rng.gen_index(3);
        let rec = v2_record(s);
        let off = u64::from_le_bytes(bytes[rec.start..rec.start + 8].try_into().unwrap_or([0; 8]))
            as usize;
        let len = u64::from_le_bytes(
            bytes[rec.start + 8..rec.start + 16]
                .try_into()
                .unwrap_or([0; 8]),
        ) as usize;
        if len > 0 {
            bytes[off + rng.gen_index(len)] ^= 1 << rng.gen_index(8);
            let sum = store_v2::section_checksum(&bytes[off..off + len]);
            bytes[rec.start + 16..rec.end].copy_from_slice(&sum.to_le_bytes());
            refresh_v2_table_checksum(&mut bytes);
            if check_store_v2_bytes(&bytes)? {
                summary.store_v2_parses_survived += 1;
            }
            summary.store_v2_mutations += 1;
        }

        // Misaligned section offset, with every checksum telling the
        // same lie: only the alignment/bounds validator stands.
        let mut bytes = clean.to_vec();
        let rec = v2_record(rng.gen_index(3));
        let off = u64::from_le_bytes(bytes[rec.start..rec.start + 8].try_into().unwrap_or([0; 8]));
        let nudged = off.wrapping_add(1 + rng.gen_index(store_v2::SECTION_ALIGN - 1) as u64);
        bytes[rec.start..rec.start + 8].copy_from_slice(&nudged.to_le_bytes());
        refresh_v2_table_checksum(&mut bytes);
        if check_store_v2_bytes(&bytes)? {
            return Err(Failure::Defect(format!(
                "v2 store accepted a section offset nudged {off} -> {nudged} (round {i})"
            )));
        }
        summary.store_v2_mutations += 1;

        // Truncation at a random cut.
        let mut bytes = clean.to_vec();
        bytes.truncate(rng.gen_index(bytes.len()));
        if check_store_v2_bytes(&bytes)? {
            return Err(Failure::Defect(format!(
                "v2 store accepted a truncation to {} bytes (round {i})",
                bytes.len()
            )));
        }
        summary.store_v2_mutations += 1;
    }
    Ok(())
}

/// Random payloads through every frame decoder; panics are defects.
fn wire_campaign(
    opts: &Opts,
    deadline: Instant,
    rng: &mut Xorshift64,
    summary: &mut Summary,
) -> Result<(), Failure> {
    for i in 0..opts.iters {
        if Instant::now() > deadline {
            return Err(Failure::Timeout(format!(
                "wire campaign stuck at round {i} of {}",
                opts.iters
            )));
        }
        let len = rng.gen_index(64);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
            let _ = ServerHello::decode(&payload);
            let _ = ClientHello::decode(&payload);
        }))
        .map_err(|_| {
            Failure::Defect(format!(
                "panic decoding a random {len}-byte payload (round {i})"
            ))
        })?;
        summary.wire_decodes += 1;
    }
    Ok(())
}
