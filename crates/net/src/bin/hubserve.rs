//! `hubserve` — build, query, load-test and *serve* binary hub label
//! stores.
//!
//! ```text
//! hubserve build <graph-file> <store-file> [algo]    graph -> binary store
//! hubserve query <store-file> [pairs-file]           answer "u v" lines
//! hubserve stats <store-file>                        store + arena sizes
//! hubserve bench <store-file> [options]              in-process load test
//! hubserve serve <store-file> [options]              TCP daemon (HLNP)
//! ```
//!
//! `build` reads the plain-text edge list of `hl_graph::io`, constructs a
//! labeling (`pll` by default; also `pll-random`, `pll-betweenness`) and
//! writes the versioned binary store of `hl_server::store`.
//!
//! `query` reads whitespace-separated `u v` pairs — from a file when given
//! (served as one batch across the pool), else line-by-line from stdin
//! through the cached single-query path — and prints `u v <distance>` per
//! pair, with `inf` for unreachable.
//!
//! `stats` validates the store, decodes it into the flat query-time arena
//! (`hl_core::FlatLabeling`, exactly what `serve`/`bench` load), and
//! prints both the on-disk and in-memory sizes, so the store-size claims
//! in EXPERIMENTS.md regenerate from the CLI.
//!
//! `bench` drives the engine with seeded random batches on 1 worker and on
//! N workers, reports throughput and the speedup, then replays a skewed
//! single-query workload to exercise the cache, and dumps the metrics
//! snapshot.
//!
//! `serve` loads the store into a [`hl_net::NetServer`] and answers HLNP
//! frames until a `Shutdown` request arrives, then drains and prints the
//! final metrics snapshot. It announces `listening on <addr>` on stdout
//! so scripts binding port 0 can discover the ephemeral port.
//!
//! Exit codes: 0 success, 1 runtime failure (bad store, i/o), 2 usage.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::HubLabeling;
use hl_graph::rng::Xorshift64;
use hl_graph::{NodeId, INFINITY};
use hl_net::{NetServer, ServerConfig};
use hl_server::{LabelStore, QueryEngine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("usage: hubserve build|query|stats|bench|serve ...");
            eprintln!("  build <graph-file> <store-file> [pll|pll-random|pll-betweenness]");
            eprintln!("  query <store-file> [pairs-file]");
            eprintln!("  stats <store-file>");
            eprintln!("  bench <store-file> [--queries N] [--workers N] [--batch N] [--seed S]");
            eprintln!("  serve <store-file> [--addr HOST:PORT] [--workers N] [--max-conns N]");
            eprintln!("        [--read-timeout-ms N] [--write-timeout-ms N]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hubserve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

fn open_store(path: &str) -> Result<LabelStore, String> {
    LabelStore::open(path).map_err(|e| format!("cannot open store {path}: {e}"))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (graph_path, store_path, algo) = match args {
        [g, s] => (g, s, "pll"),
        [g, s, a] => (g, s, a.as_str()),
        _ => return Err("usage: hubserve build <graph-file> <store-file> [algo]".into()),
    };
    let file = File::open(graph_path).map_err(|e| format!("cannot open {graph_path}: {e}"))?;
    let g = hl_graph::io::read_edge_list(BufReader::new(file)).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let labeling: HubLabeling = match algo {
        "pll" => PrunedLandmarkLabeling::by_degree(&g).into_labeling(),
        "pll-random" => PrunedLandmarkLabeling::by_random_order(&g, 1).into_labeling(),
        "pll-betweenness" => PrunedLandmarkLabeling::by_betweenness(&g, 24, 1).into_labeling(),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let build_s = started.elapsed().as_secs_f64();
    let store = LabelStore::from_labeling(&labeling);
    store
        .save(store_path)
        .map_err(|e| format!("cannot write {store_path}: {e}"))?;
    println!(
        "built {algo} labels for {} nodes in {build_s:.2}s; store {} bytes ({:.1} bits/label)",
        labeling.num_nodes(),
        store.file_len(),
        store.total_bits() as f64 / labeling.num_nodes().max(1) as f64,
    );
    Ok(())
}

fn parse_pair(line: &str, n: usize) -> Result<Option<(NodeId, NodeId)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let (Some(u), Some(v), None) = (it.next(), it.next(), it.next()) else {
        return Err(format!("expected 'u v', got '{line}'"));
    };
    let u: NodeId = u.parse().map_err(|_| format!("bad vertex id '{u}'"))?;
    let v: NodeId = v.parse().map_err(|_| format!("bad vertex id '{v}'"))?;
    if u as usize >= n || v as usize >= n {
        return Err(format!(
            "vertex out of range in '{line}' (store covers 0..{n})"
        ));
    }
    Ok(Some((u, v)))
}

fn print_answer(out: &mut impl Write, u: NodeId, v: NodeId, d: u64) -> Result<(), String> {
    let r = if d == INFINITY {
        writeln!(out, "{u} {v} inf")
    } else {
        writeln!(out, "{u} {v} {d}")
    };
    r.map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (store_path, pairs_path) = match args {
        [s] => (s, None),
        [s, p] => (s, Some(p)),
        _ => return Err("usage: hubserve query <store-file> [pairs-file]".into()),
    };
    let store = open_store(store_path)?;
    let n = store.num_nodes();
    let engine = QueryEngine::from_store(&store, default_workers())
        .map_err(|e| format!("cannot start engine: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());

    match pairs_path {
        Some(path) => {
            // Batch mode: load all pairs, shard them across the pool.
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut pairs = Vec::new();
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some(pair) = parse_pair(&line, n)? {
                    pairs.push(pair);
                }
            }
            let distances = engine.query_batch(&pairs).map_err(|e| e.to_string())?;
            for (&(u, v), &d) in pairs.iter().zip(&distances) {
                print_answer(&mut out, u, v, d)?;
            }
        }
        None => {
            // Line protocol: answer as lines arrive, through the cache.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some((u, v)) = parse_pair(&line, n)? {
                    let d = engine.query(u, v).map_err(|e| e.to_string())?;
                    print_answer(&mut out, u, v, d)?;
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [store_path] = args else {
        return Err("usage: hubserve stats <store-file>".into());
    };
    let store = open_store(store_path)?;
    let n = store.num_nodes();
    let flat = store
        .to_flat()
        .map_err(|e| format!("cannot decode store: {e}"))?;
    println!("store {store_path}");
    println!("  nodes              {n}");
    println!(
        "  file bytes         {} ({:.1} bits/label gamma-coded)",
        store.file_len(),
        store.total_bits() as f64 / n.max(1) as f64
    );
    println!("  arena entries      {}", flat.num_entries());
    println!(
        "  arena heap bytes   {} ({:.1} avg hubs/vertex, max {})",
        flat.heap_bytes(),
        flat.average_hubs(),
        flat.max_hubs()
    );
    Ok(())
}

struct BenchOpts {
    queries: usize,
    workers: usize,
    batch: usize,
    seed: u64,
}

fn parse_bench_opts(args: &[String]) -> Result<(String, BenchOpts), String> {
    let mut store_path = None;
    let mut opts = BenchOpts {
        queries: 100_000,
        workers: default_workers(),
        batch: 1024,
        seed: 42,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--queries" => {
                opts.queries = take("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--workers" => {
                opts.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--batch" => {
                opts.batch = take("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other if store_path.is_none() && !other.starts_with('-') => {
                store_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let store_path = store_path.ok_or_else(|| {
        "usage: hubserve bench <store-file> [--queries N] [--workers N] [--batch N] [--seed S]"
            .to_string()
    })?;
    if opts.queries == 0 || opts.batch == 0 {
        return Err("--queries and --batch must be positive".into());
    }
    Ok((store_path, opts))
}

fn run_batches(
    engine: &QueryEngine,
    pairs: &[(NodeId, NodeId)],
    batch: usize,
) -> Result<f64, String> {
    let started = Instant::now();
    let mut sink = 0u64;
    for chunk in pairs.chunks(batch) {
        let distances = engine.query_batch(chunk).map_err(|e| e.to_string())?;
        sink = sink.wrapping_add(distances.iter().fold(0u64, |a, &d| a.wrapping_add(d)));
    }
    std::hint::black_box(sink);
    Ok(started.elapsed().as_secs_f64())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (store_path, opts) = parse_bench_opts(args)?;
    let store = open_store(&store_path)?;
    let n = store.num_nodes();
    if n < 2 {
        return Err("store too small to bench".into());
    }
    let labeling = store
        .to_flat()
        .map_err(|e| format!("cannot decode store: {e}"))?;

    let mut rng = Xorshift64::seed_from_u64(opts.seed);
    let pairs: Vec<(NodeId, NodeId)> = (0..opts.queries)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();

    println!(
        "store: {n} nodes, {} bytes; load: {} queries in batches of {}",
        store.file_len(),
        opts.queries,
        opts.batch
    );

    let single =
        QueryEngine::new(labeling.clone(), 1).map_err(|e| format!("cannot start engine: {e}"))?;
    let t1 = run_batches(&single, &pairs, opts.batch)?;
    println!(
        "  1 worker : {:>10.0} queries/s ({t1:.3}s)",
        opts.queries as f64 / t1
    );
    drop(single);

    let pooled = QueryEngine::new(labeling, opts.workers)
        .map_err(|e| format!("cannot start engine: {e}"))?;
    let tn = run_batches(&pooled, &pairs, opts.batch)?;
    println!(
        "  {} workers: {:>10.0} queries/s ({tn:.3}s)  speedup {:.2}x",
        opts.workers,
        opts.queries as f64 / tn,
        t1 / tn
    );

    // Skewed point lookups: a small hot set replayed through the cache.
    let hot: Vec<(NodeId, NodeId)> = (0..256)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();
    let singles = opts.queries.min(50_000);
    let started = Instant::now();
    for i in 0..singles {
        let (u, v) = hot[rng.gen_index(hot.len().min(1 + i))];
        pooled.query(u, v).map_err(|e| e.to_string())?;
    }
    let ts = started.elapsed().as_secs_f64();
    println!(
        "  cached singles: {:>10.0} queries/s ({singles} queries)",
        singles as f64 / ts
    );

    println!("--- metrics ({} workers engine) ---", opts.workers);
    println!("{}", pooled.snapshot().render_text());
    Ok(())
}

struct ServeOpts {
    addr: String,
    workers: usize,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
}

fn parse_serve_opts(args: &[String]) -> Result<(String, ServeOpts), String> {
    let mut store_path = None;
    let mut opts = ServeOpts {
        addr: "127.0.0.1:4890".to_string(),
        workers: default_workers(),
        max_conns: 64,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(10),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr")?.to_string(),
            "--workers" => {
                opts.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-conns" => {
                opts.max_conns = take("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--read-timeout-ms" => {
                let ms: u64 = take("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                opts.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--write-timeout-ms" => {
                let ms: u64 = take("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                opts.write_timeout = Duration::from_millis(ms.max(1));
            }
            other if store_path.is_none() && !other.starts_with('-') => {
                store_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let store_path = store_path.ok_or_else(|| {
        "usage: hubserve serve <store-file> [--addr HOST:PORT] [--workers N] [--max-conns N] \
         [--read-timeout-ms N] [--write-timeout-ms N]"
            .to_string()
    })?;
    if opts.max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    Ok((store_path, opts))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (store_path, opts) = parse_serve_opts(args)?;
    let store = open_store(&store_path)?;
    let engine = Arc::new(
        QueryEngine::from_store(&store, opts.workers)
            .map_err(|e| format!("cannot start engine: {e}"))?,
    );
    let config = ServerConfig {
        max_connections: opts.max_conns,
        read_timeout: opts.read_timeout,
        write_timeout: opts.write_timeout,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&engine), opts.addr.as_str(), config)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    println!(
        "serving {} nodes, {} label entries ({} arena bytes, {} workers, {} max conns)",
        store.num_nodes(),
        engine.num_entries(),
        engine.heap_bytes(),
        opts.workers,
        opts.max_conns
    );
    // Scripts parse this line to discover an ephemeral port (--addr :0).
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    server.serve().map_err(|e| format!("serve failed: {e}"))?;

    println!("--- final metrics ---");
    println!("{}", engine.snapshot().render_text());
    println!("shutdown complete");
    Ok(())
}
