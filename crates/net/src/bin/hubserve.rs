//! `hubserve` — build, query, load-test and *serve* binary hub label
//! stores.
//!
//! ```text
//! hubserve build <graph-file> <store-file> [options]  graph -> binary store
//! hubserve query <store-file> [pairs-file]            answer "u v" lines
//! hubserve stats <store-file>                         store + arena sizes
//! hubserve bench <store-file> [options]               in-process load test
//! hubserve serve <store-file> [options]               TCP daemon (HLNP)
//! hubserve convert <in-store> <out-store> --to v1|v2|v2c  migrate store formats
//! hubserve reload <host:port> <server-store-path>     hot-swap a daemon's store
//! hubserve storebench <store-file> [options]          v1/v2/v2c load timing
//! ```
//!
//! `build` reads the plain-text edge list of `hl_graph::io` — or
//! synthesizes a seeded graph in-process with `--gen rmat|power-law|grid|gnm
//! --nodes N` — and constructs the labeling through the `hl_build`
//! batch/commit pipeline: `--threads N` parallelizes (output is
//! bit-identical to sequential PLL), `--order` picks the vertex-ordering
//! strategy (`degree`, `bfs-level`, `betweenness`, `closeness`, `random`,
//! `identity`). The result is written as the versioned binary store of
//! `hl_server::store`; `--verify K` spot-checks the freshly written store
//! against ground-truth distances from `K` seeded sources, and
//! `--bench-json FILE` additionally drops a machine-readable build
//! snapshot (see BENCH_build.json). The legacy
//! positional algorithms `pll`, `pll-random` and `pll-betweenness` still
//! parse and map onto the matching order strategy.
//!
//! `query` reads whitespace-separated `u v` pairs — from a file when given
//! (served as one batch across the pool), else line-by-line from stdin
//! through the cached single-query path — and prints `u v <distance>` per
//! pair, with `inf` for unreachable.
//!
//! `stats` validates the store, decodes it into the query-time arena it
//! would actually serve from (flat CSR, or the compact arena for the
//! `v2c` flavor — exactly what `serve`/`bench` mount), and prints both
//! the on-disk and in-memory sizes, so the store-size claims in
//! EXPERIMENTS.md regenerate from the CLI.
//!
//! `bench` drives the engine with seeded random batches on 1 worker and on
//! N workers, reports throughput and the speedup, then replays a skewed
//! single-query workload to exercise the cache, and dumps the metrics
//! snapshot. It also runs the flat-vs-compact arena head-to-head on the
//! same pair stream (verifying both arenas return identical answers) and
//! a branchy-vs-branchless merge-join kernel microbench, so the tuning
//! claims in EXPERIMENTS.md regenerate from one command.
//!
//! `serve` loads a store of either format into a [`hl_net::NetServer`]
//! and answers HLNP frames until a `Shutdown` request arrives, then
//! drains and prints the final metrics snapshot. It announces
//! `listening on <addr>` on stdout so scripts binding port 0 can
//! discover the ephemeral port. A running daemon hot-swaps its store on
//! a `Reload` frame (disable with `--no-remote-reload`): in-flight
//! queries finish on the old epoch, new ones answer from the new store.
//!
//! `convert` migrates a store between HLBS v1 (γ-coded archival format),
//! HLBS v2 (the flat serving arena, verbatim) and HLBS v2c (the compact
//! flavor: delta-coded hubs, narrow distance lanes). All three encodings
//! are canonical functions of the labeling, so `convert --to v2` then
//! `convert --to v1` reproduces the original file byte for byte —
//! `--verify-roundtrip` proves it on the spot. `--reorder freq` applies
//! the hub-frequency id remap before encoding (hot hubs get small ids,
//! which shrinks the compact deltas); the remap changes hub ids, so it
//! refuses to combine with `--verify-roundtrip`.
//!
//! `reload` asks a running daemon (one with remote reload enabled) to
//! mount the store at a *server-local* path and reports the new epoch.
//!
//! `storebench` measures what v2 exists for: wall-time from store bytes
//! to a query-ready arena. It re-encodes the given store into all three
//! formats in memory, times parse+decode for each (the v2c row mounts
//! the compact arena natively, no expansion), and reports MB/s and the
//! speedup (`--bench-json` drops the BENCH_store.json snapshot).
//!
//! Exit codes: 0 success, 1 runtime failure (bad store, i/o), 2 usage.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_build::BuildConfig;
use hl_core::label::{merge_join, merge_join_branchy};
use hl_core::order::{
    BetweennessOrder, BfsLevelOrder, ClosenessOrder, DegreeOrder, IdentityOrder, RandomOrder,
};
use hl_core::{freq, CompactLabeling, VertexOrder};
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, Graph, NodeId, INFINITY};
use hl_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use hl_server::{AnyStore, CompactStore, FlatStore, LabelStore, QueryEngine, ServedLabeling};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("reload") => cmd_reload(&args[1..]),
        Some("storebench") => cmd_storebench(&args[1..]),
        _ => {
            eprintln!(
                "usage: hubserve build|query|stats|bench|serve|convert|reload|storebench ..."
            );
            eprintln!("  build [<graph-file>] <store-file> [legacy-algo]");
            eprintln!("        [--gen rmat|power-law|grid|gnm --nodes N [--edges M]]");
            eprintln!("        [--threads N] [--order degree|bfs-level|betweenness|closeness|random|identity]");
            eprintln!("        [--seed S] [--bench-json FILE]");
            eprintln!("  query <store-file> [pairs-file]");
            eprintln!("  stats <store-file>");
            eprintln!("  bench <store-file> [--queries N] [--workers N] [--batch N] [--seed S]");
            eprintln!("        [--bench-json FILE]");
            eprintln!("  serve <store-file> [--addr HOST:PORT] [--workers N] [--max-conns N]");
            eprintln!("        [--read-timeout-ms N] [--write-timeout-ms N]");
            eprintln!("        [--no-remote-shutdown] [--no-remote-reload]");
            eprintln!("  convert <in-store> <out-store> --to v1|v2|v2c [--reorder freq]");
            eprintln!("        [--verify-roundtrip]");
            eprintln!("  reload <host:port> <server-store-path>");
            eprintln!("  storebench <store-file> [--repeat N] [--bench-json FILE]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hubserve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

fn open_store(path: &str) -> Result<LabelStore, String> {
    LabelStore::open(path).map_err(|e| format!("cannot open store {path}: {e}"))
}

/// Arena plus the facts `stats`-style output wants: format version,
/// on-disk size, per-section `(name, bytes)` sizes.
type FlatWithFacts = (hl_core::FlatLabeling, u16, u64, [(&'static str, u64); 3]);

/// Opens a store of either format and decodes it to the flat arena.
fn open_any_flat(path: &str) -> Result<FlatWithFacts, String> {
    let store = AnyStore::open(path).map_err(|e| format!("cannot open store {path}: {e}"))?;
    let version = store.version();
    let file_len = store.file_len();
    let sections = store.section_bytes();
    let flat = store
        .into_flat()
        .map_err(|e| format!("cannot decode store {path}: {e}"))?;
    Ok((flat, version, file_len, sections))
}

/// Arena in the store's *native* mounted form, plus stats facts: flavor
/// tag (`"v1"`/`"v2"`/`"v2c"`), format version, on-disk size, sections.
type ServedWithFacts = (
    ServedLabeling,
    &'static str,
    u16,
    u64,
    [(&'static str, u64); 3],
);

/// Opens a store of any flavor and mounts it the way `serve` would: the
/// compact flavor stays compact, everything else decodes to the flat CSR.
fn open_any_served(path: &str) -> Result<ServedWithFacts, String> {
    let store = AnyStore::open(path).map_err(|e| format!("cannot open store {path}: {e}"))?;
    let flavor = store.flavor();
    let version = store.version();
    let file_len = store.file_len();
    let sections = store.section_bytes();
    let served = store
        .into_served()
        .map_err(|e| format!("cannot decode store {path}: {e}"))?;
    Ok((served, flavor, version, file_len, sections))
}

struct BuildOpts {
    graph_path: Option<String>,
    store_path: String,
    gen: Option<String>,
    nodes: usize,
    edges: usize,
    seed: u64,
    threads: usize,
    order: String,
    verify_sources: usize,
    bench_json: Option<String>,
}

const BUILD_USAGE: &str = "usage: hubserve build [<graph-file>] <store-file> [legacy-algo] \
     [--gen rmat|power-law|grid|gnm --nodes N [--edges M]] [--threads N] \
     [--order degree|bfs-level|betweenness|closeness|random|identity] [--seed S] \
     [--verify SOURCES] [--bench-json FILE]";

fn parse_build_opts(args: &[String]) -> Result<BuildOpts, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut gen = None;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    let mut seed = 1u64;
    let mut threads = 1usize;
    let mut order: Option<String> = None;
    let mut verify_sources = 0usize;
    let mut bench_json = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--gen" => gen = Some(take("--gen")?.to_string()),
            "--nodes" => {
                nodes = take("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--edges" => {
                edges = take("--edges")?
                    .parse()
                    .map_err(|e| format!("--edges: {e}"))?
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                threads = take("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--order" => order = Some(take("--order")?.to_string()),
            "--verify" => {
                verify_sources = take("--verify")?
                    .parse()
                    .map_err(|e| format!("--verify: {e}"))?
            }
            "--bench-json" => bench_json = Some(take("--bench-json")?.to_string()),
            other if !other.starts_with('-') => positionals.push(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    // Legacy positional algorithms map onto order strategies.
    let legacy = |algo: &str| -> Result<String, String> {
        match algo {
            "pll" => Ok("degree".into()),
            "pll-random" => Ok("random".into()),
            "pll-betweenness" => Ok("betweenness".into()),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    };
    let (graph_path, store_path, legacy_order) = if gen.is_some() {
        match positionals.as_slice() {
            [s] => (None, s.clone(), None),
            _ => return Err(BUILD_USAGE.into()),
        }
    } else {
        match positionals.as_slice() {
            [g, s] => (Some(g.clone()), s.clone(), None),
            [g, s, a] => (Some(g.clone()), s.clone(), Some(legacy(a)?)),
            _ => return Err(BUILD_USAGE.into()),
        }
    };
    if let (Some(o), Some(l)) = (&order, &legacy_order) {
        if *o != *l {
            return Err(format!(
                "--order {o} conflicts with legacy algo (implies {l})"
            ));
        }
    }
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    Ok(BuildOpts {
        graph_path,
        store_path,
        gen,
        nodes,
        edges,
        seed,
        threads,
        order: order.or(legacy_order).unwrap_or_else(|| "degree".into()),
        verify_sources,
        bench_json,
    })
}

fn order_strategy(name: &str, seed: u64) -> Result<Box<dyn VertexOrder>, String> {
    match name {
        "degree" => Ok(Box::new(DegreeOrder)),
        "bfs-level" => Ok(Box::new(BfsLevelOrder)),
        "betweenness" => Ok(Box::new(BetweennessOrder { samples: 24, seed })),
        "closeness" => Ok(Box::new(ClosenessOrder)),
        "random" => Ok(Box::new(RandomOrder { seed })),
        "identity" => Ok(Box::new(IdentityOrder)),
        other => Err(format!(
            "unknown order '{other}' (degree, bfs-level, betweenness, closeness, random, identity)"
        )),
    }
}

/// Synthesizes one of the seeded graph families of `hl_graph::generators`
/// sized from `--nodes`/`--edges`.
fn generate_graph(name: &str, nodes: usize, edges: usize, seed: u64) -> Result<Graph, String> {
    if nodes == 0 {
        return Err("--gen needs --nodes N".into());
    }
    match name {
        "rmat" => {
            let scale = (usize::BITS - (nodes - 1).max(1).leading_zeros()).max(1);
            let m = if edges > 0 { edges } else { nodes * 8 };
            Ok(generators::rmat(scale, m, seed))
        }
        "power-law" | "powerlaw" => Ok(generators::power_law_configuration(nodes, 25, seed)),
        "grid" => {
            let side = (nodes as f64).sqrt().ceil() as usize;
            let shortcuts = if edges > 0 { edges } else { nodes / 50 };
            Ok(generators::grid_with_shortcuts(side, side, shortcuts, seed))
        }
        "gnm" => {
            let extra = if edges > 0 {
                edges.saturating_sub(nodes - 1)
            } else {
                nodes
            };
            Ok(generators::connected_gnm(nodes, extra, seed))
        }
        other => Err(format!(
            "unknown generator '{other}' (rmat, power-law, grid, gnm)"
        )),
    }
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let opts = parse_build_opts(args)?;
    let (g, graph_desc) = match (&opts.gen, &opts.graph_path) {
        (Some(name), _) => (
            generate_graph(name, opts.nodes, opts.edges, opts.seed)?,
            name.clone(),
        ),
        (None, Some(path)) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let g =
                hl_graph::io::read_edge_list(BufReader::new(file)).map_err(|e| e.to_string())?;
            (g, path.clone())
        }
        (None, None) => return Err(BUILD_USAGE.into()),
    };
    let strategy = order_strategy(&opts.order, opts.seed)?;
    let started = Instant::now();
    let out = hl_build::build_with_strategy(
        &g,
        strategy.as_ref(),
        BuildConfig::with_threads(opts.threads),
    )
    .map_err(|e| e.to_string())?;
    let build_s = started.elapsed().as_secs_f64();
    let store = LabelStore::from_labeling(&out.labeling.to_labeling());
    store
        .save(&opts.store_path)
        .map_err(|e| format!("cannot write {}: {e}", opts.store_path))?;
    println!(
        "built {}-order labels for {} nodes ({} edges) in {build_s:.2}s \
         ({} threads, {} entries); store {} bytes ({:.1} bits/label)",
        opts.order,
        g.num_nodes(),
        g.num_edges(),
        opts.threads,
        out.labeling.num_entries(),
        store.file_len(),
        store.total_bits() as f64 / g.num_nodes().max(1) as f64,
    );
    let mut verified_pairs = 0usize;
    if opts.verify_sources > 0 {
        // Spot-check the *saved* store — reopen it, decode the flat arena,
        // and compare against ground-truth single-source distances, so the
        // whole generate -> build -> encode -> decode path is on the hook.
        let reopened = open_store(&opts.store_path)?;
        let flat = reopened
            .to_flat()
            .map_err(|e| format!("cannot decode freshly written store: {e}"))?;
        let n = g.num_nodes();
        let mut rng = Xorshift64::seed_from_u64(opts.seed ^ 0x5107_C4EC);
        for _ in 0..opts.verify_sources {
            let s = rng.gen_index(n) as NodeId;
            let truth = hl_graph::dijkstra::shortest_path_distances(&g, s);
            for _ in 0..512 {
                let v = rng.gen_index(n) as NodeId;
                let got = flat.query(s, v);
                if got != truth[v as usize] {
                    return Err(format!(
                        "verify FAILED: store answers d({s},{v}) = {got}, \
                         ground truth says {}",
                        truth[v as usize]
                    ));
                }
                verified_pairs += 1;
            }
        }
        println!(
            "verify: OK — {verified_pairs} store answers from {} sources match \
             ground-truth distances exactly",
            opts.verify_sources
        );
    }
    if let Some(path) = &opts.bench_json {
        let json = format!(
            concat!(
                "{{\"bench\":\"build\",\"graph\":\"{}\",\"n\":{},\"m\":{},",
                "\"threads\":{},\"nproc\":{},\"order\":\"{}\",\"seed\":{},\"build_seconds\":{:.6},",
                "\"label_entries\":{},\"store_bytes\":{},\"verified_pairs\":{},",
                "\"stats\":{}}}\n"
            ),
            graph_desc,
            g.num_nodes(),
            g.num_edges(),
            opts.threads,
            default_workers(),
            out.stats.order,
            opts.seed,
            build_s,
            out.labeling.num_entries(),
            store.file_len(),
            verified_pairs,
            out.stats.to_json(),
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("build snapshot written to {path}");
    }
    Ok(())
}

fn parse_pair(line: &str, n: usize) -> Result<Option<(NodeId, NodeId)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let (Some(u), Some(v), None) = (it.next(), it.next(), it.next()) else {
        return Err(format!("expected 'u v', got '{line}'"));
    };
    let u: NodeId = u.parse().map_err(|_| format!("bad vertex id '{u}'"))?;
    let v: NodeId = v.parse().map_err(|_| format!("bad vertex id '{v}'"))?;
    if u as usize >= n || v as usize >= n {
        return Err(format!(
            "vertex out of range in '{line}' (store covers 0..{n})"
        ));
    }
    Ok(Some((u, v)))
}

fn print_answer(out: &mut impl Write, u: NodeId, v: NodeId, d: u64) -> Result<(), String> {
    let r = if d == INFINITY {
        writeln!(out, "{u} {v} inf")
    } else {
        writeln!(out, "{u} {v} {d}")
    };
    r.map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (store_path, pairs_path) = match args {
        [s] => (s, None),
        [s, p] => (s, Some(p)),
        _ => return Err("usage: hubserve query <store-file> [pairs-file]".into()),
    };
    let (served, _, _, _, _) = open_any_served(store_path)?;
    let n = served.num_nodes();
    let engine = QueryEngine::new(served, default_workers())
        .map_err(|e| format!("cannot start engine: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());

    match pairs_path {
        Some(path) => {
            // Batch mode: load all pairs, shard them across the pool.
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut pairs = Vec::new();
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some(pair) = parse_pair(&line, n)? {
                    pairs.push(pair);
                }
            }
            let distances = engine.query_batch(&pairs).map_err(|e| e.to_string())?;
            for (&(u, v), &d) in pairs.iter().zip(&distances) {
                print_answer(&mut out, u, v, d)?;
            }
        }
        None => {
            // Line protocol: answer as lines arrive, through the cache.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                if let Some((u, v)) = parse_pair(&line, n)? {
                    let d = engine.query(u, v).map_err(|e| e.to_string())?;
                    print_answer(&mut out, u, v, d)?;
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [store_path] = args else {
        return Err("usage: hubserve stats <store-file>".into());
    };
    let (served, flavor, version, file_len, sections) = open_any_served(store_path)?;
    let n = served.num_nodes();
    println!("store {store_path}");
    println!("  format version     {version} (flavor {flavor})");
    println!("  nodes              {n}");
    match flavor {
        "v1" => println!(
            "  file bytes         {file_len} ({:.1} bits/label gamma-coded)",
            sections[2].1 as f64 * 8.0 / n.max(1) as f64
        ),
        "v2c" => println!(
            "  file bytes         {file_len} ({:.1} bits/label compact arena)",
            (sections[1].1 + sections[2].1) as f64 * 8.0 / n.max(1) as f64
        ),
        _ => println!(
            "  file bytes         {file_len} ({:.1} bits/label flat arena)",
            (sections[1].1 + sections[2].1) as f64 * 8.0 / n.max(1) as f64
        ),
    }
    for (name, bytes) in sections {
        println!("  section {name:<10} {bytes} bytes");
    }
    println!("  arena kind         {}", served.kind());
    if let ServedLabeling::Compact(c) = &served {
        println!(
            "  compact lanes      hubs u{}, dists u{} ({:.2} B/entry incl. offsets)",
            c.hub_entry_bytes() * 8,
            c.dist_entry_bytes() * 8,
            c.bytes_per_entry()
        );
    }
    println!("  arena entries      {}", served.num_entries());
    println!(
        "  arena heap bytes   {} ({:.1} avg hubs/vertex, max {})",
        served.heap_bytes(),
        served.average_hubs(),
        served.max_hubs()
    );
    Ok(())
}

struct BenchOpts {
    queries: usize,
    workers: usize,
    batch: usize,
    seed: u64,
    bench_json: Option<String>,
}

fn parse_bench_opts(args: &[String]) -> Result<(String, BenchOpts), String> {
    let mut store_path = None;
    let mut opts = BenchOpts {
        queries: 100_000,
        workers: default_workers(),
        batch: 1024,
        seed: 42,
        bench_json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--queries" => {
                opts.queries = take("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--workers" => {
                opts.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--batch" => {
                opts.batch = take("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--bench-json" => opts.bench_json = Some(take("--bench-json")?.to_string()),
            other if store_path.is_none() && !other.starts_with('-') => {
                store_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let store_path = store_path.ok_or_else(|| {
        "usage: hubserve bench <store-file> [--queries N] [--workers N] [--batch N] [--seed S] \
         [--bench-json FILE]"
            .to_string()
    })?;
    if opts.queries == 0 || opts.batch == 0 {
        return Err("--queries and --batch must be positive".into());
    }
    Ok((store_path, opts))
}

fn run_batches(
    engine: &QueryEngine,
    pairs: &[(NodeId, NodeId)],
    batch: usize,
) -> Result<f64, String> {
    let started = Instant::now();
    let mut sink = 0u64;
    for chunk in pairs.chunks(batch) {
        let distances = engine.query_batch(chunk).map_err(|e| e.to_string())?;
        sink = sink.wrapping_add(distances.iter().fold(0u64, |a, &d| a.wrapping_add(d)));
    }
    std::hint::black_box(sink);
    Ok(started.elapsed().as_secs_f64())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (store_path, opts) = parse_bench_opts(args)?;
    let (served, flavor, _, file_len, _) = open_any_served(&store_path)?;
    let n = served.num_nodes();
    if n < 2 {
        return Err("store too small to bench".into());
    }

    let mut rng = Xorshift64::seed_from_u64(opts.seed);
    let pairs: Vec<(NodeId, NodeId)> = (0..opts.queries)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();

    println!(
        "store: {n} nodes, {file_len} bytes ({flavor}); load: {} queries in batches of {}",
        opts.queries, opts.batch
    );

    // Head-to-head arenas from the same labeling, whatever flavor was on
    // disk. The compact build only fails when a distance overflows u32 —
    // report it and carry on flat-only.
    let flat = served.into_flat();
    let entries = flat.num_entries();
    let compact = match CompactLabeling::from_flat(&flat) {
        Ok(c) => Some(c),
        Err(e) => {
            println!("  (skipping compact head-to-head: {e})");
            None
        }
    };

    let single =
        QueryEngine::new(flat.clone(), 1).map_err(|e| format!("cannot start engine: {e}"))?;
    let t1 = run_batches(&single, &pairs, opts.batch)?;
    println!(
        "  flat     1 worker : {:>10.0} queries/s ({t1:.3}s, {:.1} B/entry)",
        opts.queries as f64 / t1,
        flat.heap_bytes() as f64 / entries.max(1) as f64
    );
    drop(single);

    let pooled = QueryEngine::new(flat.clone(), opts.workers)
        .map_err(|e| format!("cannot start engine: {e}"))?;
    let tn = run_batches(&pooled, &pairs, opts.batch)?;
    println!(
        "  flat     {} workers: {:>10.0} queries/s ({tn:.3}s)  speedup {:.2}x",
        opts.workers,
        opts.queries as f64 / tn,
        t1 / tn
    );

    // Same engine, same pair stream, compact arena mounted instead.
    let (tc1, tcn, verified, compact_bpe) = match &compact {
        Some(c) => {
            let mut verified = 0usize;
            for &(u, v) in &pairs {
                if flat.query(u, v) != c.query(u, v) {
                    return Err(format!(
                        "head-to-head FAILED: flat and compact arenas disagree on d({u},{v})"
                    ));
                }
                verified += 1;
            }
            let c_single =
                QueryEngine::new(c.clone(), 1).map_err(|e| format!("cannot start engine: {e}"))?;
            let tc1 = run_batches(&c_single, &pairs, opts.batch)?;
            drop(c_single);
            let c_pooled = QueryEngine::new(c.clone(), opts.workers)
                .map_err(|e| format!("cannot start engine: {e}"))?;
            let tcn = run_batches(&c_pooled, &pairs, opts.batch)?;
            drop(c_pooled);
            println!(
                "  compact  1 worker : {:>10.0} queries/s ({tc1:.3}s, {:.1} B/entry)",
                opts.queries as f64 / tc1,
                c.bytes_per_entry()
            );
            println!(
                "  compact  {} workers: {:>10.0} queries/s ({tcn:.3}s)  speedup {:.2}x",
                opts.workers,
                opts.queries as f64 / tcn,
                tc1 / tcn
            );
            println!(
                "  head-to-head: {verified} answers identical; compact arena {:.1}% of flat bytes",
                100.0 * c.heap_bytes() as f64 / flat.heap_bytes().max(1) as f64
            );
            (tc1, tcn, verified, c.bytes_per_entry())
        }
        None => (0.0, 0.0, 0, 0.0),
    };

    // Merge-join kernel microbench on raw label slices: the shipping
    // branchless kernel against the branchy reference formulation.
    type JoinFn = dyn Fn(&[NodeId], &[u64], &[NodeId], &[u64]) -> u64;
    let time_kernel = |f: &JoinFn| -> f64 {
        let started = Instant::now();
        let mut sink = 0u64;
        for &(u, v) in &pairs {
            sink = sink.wrapping_add(f(
                flat.hubs_of(u),
                flat.dists_of(u),
                flat.hubs_of(v),
                flat.dists_of(v),
            ));
        }
        std::hint::black_box(sink);
        started.elapsed().as_secs_f64()
    };
    // Alternate repetitions and keep each kernel's best pass, so a cache
    // warm-up or scheduler hiccup cannot decide the head-to-head.
    let (mut t_branchy, mut t_branchless) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        t_branchy = t_branchy.min(time_kernel(&merge_join_branchy));
        t_branchless = t_branchless.min(time_kernel(&merge_join));
    }
    let per_join = |t: f64| t * 1e9 / pairs.len().max(1) as f64;
    println!(
        "  kernel: branchy {:.1} ns/join, branchless {:.1} ns/join ({:.2}x)",
        per_join(t_branchy),
        per_join(t_branchless),
        t_branchy / t_branchless.max(1e-12)
    );

    // Skewed point lookups: a small hot set replayed through the cache.
    let hot: Vec<(NodeId, NodeId)> = (0..256)
        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
        .collect();
    let singles = opts.queries.min(50_000);
    let started = Instant::now();
    for i in 0..singles {
        let (u, v) = hot[rng.gen_index(hot.len().min(1 + i))];
        pooled.query(u, v).map_err(|e| e.to_string())?;
    }
    let ts = started.elapsed().as_secs_f64();
    println!(
        "  cached singles: {:>10.0} queries/s ({singles} queries)",
        singles as f64 / ts
    );

    println!("--- metrics ({} workers engine) ---", opts.workers);
    let snap = pooled.snapshot();
    println!("{}", snap.render_text());
    if let Some(path) = &opts.bench_json {
        let qps = |t: f64| {
            if t > 0.0 {
                opts.queries as f64 / t
            } else {
                0.0
            }
        };
        let json = format!(
            concat!(
                "{{\"bench\":\"query\",\"store\":\"{}\",\"flavor\":\"{}\",\"n\":{},",
                "\"label_entries\":{},\"queries\":{},\"batch\":{},\"seed\":{},",
                "\"workers\":{},\"nproc\":{},",
                "\"single_qps\":{:.0},\"pooled_qps\":{:.0},\"speedup\":{:.3},",
                "\"compact_single_qps\":{:.0},\"compact_pooled_qps\":{:.0},",
                "\"verified_identical\":{},",
                "\"flat_bytes_per_entry\":{:.2},\"compact_bytes_per_entry\":{:.2},",
                "\"branchy_ns_per_join\":{:.1},\"branchless_ns_per_join\":{:.1},",
                "\"cached_single_qps\":{:.0},\"p50_ns\":{},\"p99_ns\":{}}}\n"
            ),
            store_path,
            flavor,
            n,
            entries,
            opts.queries,
            opts.batch,
            opts.seed,
            opts.workers,
            default_workers(),
            qps(t1),
            qps(tn),
            t1 / tn,
            qps(tc1),
            qps(tcn),
            verified,
            flat.heap_bytes() as f64 / entries.max(1) as f64,
            compact_bpe,
            per_join(t_branchy),
            per_join(t_branchless),
            singles as f64 / ts,
            snap.p50_ns,
            snap.p99_ns,
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("query snapshot written to {path}");
    }
    Ok(())
}

struct ServeOpts {
    addr: String,
    workers: usize,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    allow_remote_shutdown: bool,
    allow_remote_reload: bool,
}

fn parse_serve_opts(args: &[String]) -> Result<(String, ServeOpts), String> {
    let mut store_path = None;
    let mut opts = ServeOpts {
        addr: "127.0.0.1:4890".to_string(),
        workers: default_workers(),
        max_conns: 64,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(10),
        allow_remote_shutdown: true,
        allow_remote_reload: true,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr")?.to_string(),
            "--workers" => {
                opts.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-conns" => {
                opts.max_conns = take("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--read-timeout-ms" => {
                let ms: u64 = take("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                opts.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--write-timeout-ms" => {
                let ms: u64 = take("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                opts.write_timeout = Duration::from_millis(ms.max(1));
            }
            "--no-remote-shutdown" => opts.allow_remote_shutdown = false,
            "--no-remote-reload" => opts.allow_remote_reload = false,
            other if store_path.is_none() && !other.starts_with('-') => {
                store_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let store_path = store_path.ok_or_else(|| {
        "usage: hubserve serve <store-file> [--addr HOST:PORT] [--workers N] [--max-conns N] \
         [--read-timeout-ms N] [--write-timeout-ms N] [--no-remote-shutdown] \
         [--no-remote-reload]"
            .to_string()
    })?;
    if opts.max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    Ok((store_path, opts))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (store_path, opts) = parse_serve_opts(args)?;
    let (served, flavor, version, _, _) = open_any_served(&store_path)?;
    let arena_kind = served.kind();
    let engine = Arc::new(
        QueryEngine::new(served, opts.workers).map_err(|e| format!("cannot start engine: {e}"))?,
    );
    let config = ServerConfig {
        max_connections: opts.max_conns,
        read_timeout: opts.read_timeout,
        write_timeout: opts.write_timeout,
        allow_remote_shutdown: opts.allow_remote_shutdown,
        allow_remote_reload: opts.allow_remote_reload,
        store_version: version,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&engine), opts.addr.as_str(), config)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    println!(
        "serving {} nodes, {} label entries (store {flavor}, {arena_kind} arena, \
         {} arena bytes, {} workers, {} max conns)",
        engine.num_nodes(),
        engine.num_entries(),
        engine.heap_bytes(),
        opts.workers,
        opts.max_conns
    );
    // Scripts parse this line to discover an ephemeral port (--addr :0).
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    server.serve().map_err(|e| format!("serve failed: {e}"))?;

    println!("--- final metrics ---");
    println!("{}", engine.snapshot().render_text());
    println!("shutdown complete");
    Ok(())
}

const CONVERT_USAGE: &str = "usage: hubserve convert <in-store> <out-store> \
     --to v1|v2|v2c [--reorder freq] [--verify-roundtrip]";

/// Encodes `flat` in the requested store flavor (`"v1"`, `"v2"`, `"v2c"`).
fn encode_as(flat: &hl_core::FlatLabeling, flavor: &str) -> Result<Vec<u8>, String> {
    match flavor {
        "v1" => {
            let mut bytes = Vec::new();
            LabelStore::from_flat(flat)
                .write_to(&mut bytes)
                .map_err(|e| format!("cannot encode v1: {e}"))?;
            Ok(bytes)
        }
        "v2" => Ok(FlatStore::from_flat(flat.clone()).encode()),
        "v2c" => {
            let compact =
                CompactLabeling::from_flat(flat).map_err(|e| format!("cannot encode v2c: {e}"))?;
            Ok(CompactStore::from_compact(compact).encode())
        }
        other => Err(format!("unknown target flavor '{other}'")),
    }
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let mut positionals = Vec::new();
    let mut to = None;
    let mut reorder = None;
    let mut verify_roundtrip = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--to" => to = Some(take("--to")?.to_string()),
            "--reorder" => reorder = Some(take("--reorder")?.to_string()),
            "--verify-roundtrip" => verify_roundtrip = true,
            other if !other.starts_with('-') => positionals.push(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let ([in_path, out_path], Some(to)) = (positionals.as_slice(), to) else {
        return Err(CONVERT_USAGE.into());
    };
    let target = match to.as_str() {
        "v1" | "1" => "v1",
        "v2" | "2" => "v2",
        "v2c" | "2c" => "v2c",
        other => return Err(format!("--to must be v1, v2 or v2c, not '{other}'")),
    };
    match reorder.as_deref() {
        None => {}
        Some("freq") if verify_roundtrip => {
            return Err(
                "--reorder freq remaps hub ids, so the output cannot re-encode to the \
                 input bytes; drop --verify-roundtrip"
                    .into(),
            )
        }
        Some("freq") => {}
        Some(other) => return Err(format!("--reorder must be freq, not '{other}'")),
    }

    let in_bytes = std::fs::read(in_path).map_err(|e| format!("cannot read {in_path}: {e}"))?;
    let store =
        AnyStore::parse(&in_bytes).map_err(|e| format!("cannot parse store {in_path}: {e}"))?;
    let source = store.flavor();
    let mut flat = store
        .into_flat()
        .map_err(|e| format!("cannot decode store {in_path}: {e}"))?;
    if reorder.is_some() {
        let before = flat.heap_bytes();
        let (tuned, _) = freq::reorder_by_hub_frequency(&flat);
        flat = tuned;
        println!(
            "reordered hub ids by global frequency ({} entries, flat arena {before} bytes)",
            flat.num_entries()
        );
    }
    let out_bytes = encode_as(&flat, target)?;
    std::fs::write(out_path, &out_bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "converted {in_path} ({source}, {} bytes) -> {out_path} ({target}, {} bytes, {:.2}x)",
        in_bytes.len(),
        out_bytes.len(),
        out_bytes.len() as f64 / in_bytes.len().max(1) as f64
    );

    if verify_roundtrip {
        // All three encodings are canonical functions of the labeling, so
        // decoding what we just wrote and re-encoding in the *source*
        // flavor must reproduce the input byte for byte.
        let back = AnyStore::parse(&out_bytes)
            .map_err(|e| format!("roundtrip: cannot re-parse output: {e}"))?
            .into_flat()
            .map_err(|e| format!("roundtrip: cannot re-decode output: {e}"))?;
        let again = encode_as(&back, source)?;
        if again != in_bytes {
            return Err(format!(
                "roundtrip FAILED: {target} -> {source} re-encoding differs from the input \
                 ({} vs {} bytes)",
                again.len(),
                in_bytes.len()
            ));
        }
        println!(
            "roundtrip verified: {source} -> {target} -> {source} is byte-identical \
             ({} bytes)",
            in_bytes.len()
        );
    }
    Ok(())
}

fn cmd_reload(args: &[String]) -> Result<(), String> {
    let [addr, store_path] = args else {
        return Err("usage: hubserve reload <host:port> <server-store-path>".into());
    };
    let mut client = NetClient::connect(addr.as_str(), ClientConfig::default())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let before = client.num_nodes();
    let (epoch, num_nodes) = client
        .reload(store_path)
        .map_err(|e| format!("reload failed: {e}"))?;
    println!(
        "reloaded {addr} from {store_path}: epoch {epoch}, {num_nodes} nodes \
         (was {before})"
    );
    Ok(())
}

struct StorebenchOpts {
    repeat: usize,
    bench_json: Option<String>,
}

fn cmd_storebench(args: &[String]) -> Result<(), String> {
    let usage = "usage: hubserve storebench <store-file> [--repeat N] [--bench-json FILE]";
    let mut store_path = None;
    let mut opts = StorebenchOpts {
        repeat: 3,
        bench_json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--repeat" => {
                opts.repeat = take("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?
            }
            "--bench-json" => opts.bench_json = Some(take("--bench-json")?.to_string()),
            other if store_path.is_none() && !other.starts_with('-') => {
                store_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let store_path = store_path.ok_or_else(|| usage.to_string())?;
    if opts.repeat == 0 {
        return Err("--repeat must be positive".into());
    }

    let (flat, source, _, _) = open_any_flat(&store_path)?;
    let (n, entries) = (flat.num_nodes(), flat.num_entries());
    println!("store {store_path} (v{source}): {n} nodes, {entries} entries");
    println!("re-encoding all formats in memory, timing bytes -> query-ready arena:");

    // All formats parse from RAM, so the numbers isolate decode cost
    // from disk and page-cache behavior.
    let v1_bytes = encode_as(&flat, "v1")?;
    let v2_bytes = encode_as(&flat, "v2")?;
    let v2c_bytes = match encode_as(&flat, "v2c") {
        Ok(b) => Some(b),
        Err(e) => {
            println!("  (skipping v2c row: {e})");
            None
        }
    };
    drop(flat);

    // Each flavor is timed to *its own* mounted arena — flat for v1/v2,
    // the compact arena for v2c — matching what `serve` does.
    let time_load = |bytes: &[u8]| -> Result<f64, String> {
        let mut best = f64::INFINITY;
        for _ in 0..opts.repeat {
            let started = Instant::now();
            let served = AnyStore::parse(bytes)
                .map_err(|e| format!("bench parse: {e}"))?
                .into_served()
                .map_err(|e| format!("bench decode: {e}"))?;
            best = best.min(started.elapsed().as_secs_f64());
            std::hint::black_box(served);
        }
        Ok(best)
    };
    let t1 = time_load(&v1_bytes)?;
    let t2 = time_load(&v2_bytes)?;
    let t2c = match &v2c_bytes {
        Some(b) => Some(time_load(b)?),
        None => None,
    };
    let mbs = |bytes: usize, t: f64| bytes as f64 / 1e6 / t.max(1e-12);
    println!(
        "  v1  (gamma-coded)  : {:>12} bytes  {t1:>9.3}s  {:>8.1} MB/s",
        v1_bytes.len(),
        mbs(v1_bytes.len(), t1)
    );
    println!(
        "  v2  (flat arena)   : {:>12} bytes  {t2:>9.3}s  {:>8.1} MB/s",
        v2_bytes.len(),
        mbs(v2_bytes.len(), t2)
    );
    if let (Some(b), Some(t)) = (&v2c_bytes, t2c) {
        println!(
            "  v2c (compact arena): {:>12} bytes  {t:>9.3}s  {:>8.1} MB/s",
            b.len(),
            mbs(b.len(), t)
        );
    }
    println!(
        "  load speedup: {:.1}x wall-time v1 -> v2 (best of {} runs each)",
        t1 / t2.max(1e-12),
        opts.repeat
    );

    if let Some(path) = &opts.bench_json {
        let json = format!(
            concat!(
                "{{\"bench\":\"store\",\"store\":\"{}\",\"source_version\":{},",
                "\"n\":{},\"label_entries\":{},\"repeat\":{},\"seed\":0,\"nproc\":{},",
                "\"v1_bytes\":{},\"v2_bytes\":{},\"v2c_bytes\":{},",
                "\"v1_load_seconds\":{:.6},\"v2_load_seconds\":{:.6},",
                "\"v2c_load_seconds\":{:.6},",
                "\"v1_mb_per_s\":{:.1},\"v2_mb_per_s\":{:.1},\"v2c_mb_per_s\":{:.1},",
                "\"load_speedup\":{:.2}}}\n"
            ),
            store_path,
            source,
            n,
            entries,
            opts.repeat,
            default_workers(),
            v1_bytes.len(),
            v2_bytes.len(),
            v2c_bytes.as_ref().map_or(0, Vec::len),
            t1,
            t2,
            t2c.unwrap_or(0.0),
            mbs(v1_bytes.len(), t1),
            mbs(v2_bytes.len(), t2),
            match (&v2c_bytes, t2c) {
                (Some(b), Some(t)) => mbs(b.len(), t),
                _ => 0.0,
            },
            t1 / t2.max(1e-12),
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("store snapshot written to {path}");
    }
    Ok(())
}
