//! The HLNP wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame on the wire is a 4-byte little-endian payload length
//! followed by the payload; the payload's first byte is an opcode and the
//! rest is the message body. All integers are little-endian, mirroring
//! the HLBS store format.
//!
//! ```text
//! [len: u32][opcode: u8][body: len-1 bytes]
//! ```
//!
//! A connection opens with a handshake: the server sends [`ServerHello`]
//! (magic, *highest* protocol version it speaks, store format version,
//! node count), the client answers with [`ClientHello`] naming the
//! version it wants to speak — any version from 1 up to the server's
//! ceiling — and the connection speaks that version from then on. The
//! server closes with a typed [`Response::Error`] frame on a version it
//! does not speak; the client closes with [`WireError::Version`] when
//! the server's ceiling is below what the client requires.
//!
//! Version 1 is lock-step: the payload is exactly one [`Request`] or
//! [`Response`], answered strictly in order. Version 2 multiplexes: the
//! payload is `[request_id: u64][v1 payload]` ([`encode_mux`] /
//! [`split_mux`]), many requests may be in flight at once, and responses
//! complete in *any* order, correlated by id — error frames included.
//!
//! Decoding follows the label-store discipline: every read is
//! length-checked, a short body is a typed error (never a panic), a
//! frame longer than the negotiated cap is rejected before it is
//! buffered, and a body with trailing bytes is malformed — a frame must
//! decode exactly.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hl_graph::Distance;
use hl_server::MetricsSnapshot;

/// Handshake magic: "Hub Label Net Protocol".
pub const MAGIC: [u8; 4] = *b"HLNP";
/// The original lock-step protocol: requests answered strictly in order,
/// one frame payload per [`Request`]/[`Response`].
pub const PROTOCOL_VERSION: u16 = 1;
/// The multiplexed protocol: every request/response payload is prefixed
/// with a little-endian `request_id: u64` (see [`encode_mux`] /
/// [`split_mux`]), responses may complete out of order, and error frames
/// carry the id of the request they answer.
pub const PROTOCOL_V2: u16 = 2;
/// The highest protocol version this module speaks. A [`ServerHello`]
/// advertises this as its ceiling; the client picks any version up to it
/// in its [`ClientHello`] and the connection speaks that version.
pub const MAX_PROTOCOL_VERSION: u16 = PROTOCOL_V2;
/// Default cap on a frame payload. A `QueryBatch` of 64k pairs fits with
/// room to spare; anything larger is a protocol violation, not load.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;
/// Largest batch a single `QueryBatch` frame may carry.
pub const MAX_BATCH_LEN: u32 = (DEFAULT_MAX_FRAME_LEN - 16) / 8;
/// Largest store path a `Reload` frame may carry. Paths are server-local
/// filenames, not data; anything longer is a protocol violation.
pub const MAX_RELOAD_PATH_LEN: u32 = 4096;
/// Largest vertex list a single `LabelBatch` frame may carry. The
/// *response* is the real frame-size risk (each label multiplies), so
/// routers chunk label fetches well below this; see
/// [`crate::client::NetClient::label_batch_pipelined`].
pub const MAX_LABEL_BATCH_LEN: u32 = (DEFAULT_MAX_FRAME_LEN - 16) / 4;

// Opcodes. Handshake frames are 0x0_, requests 0x1_, responses 0x9_,
// and the error response stands alone at 0xEE.
const OP_SERVER_HELLO: u8 = 0x01;
const OP_CLIENT_HELLO: u8 = 0x02;
const OP_PING: u8 = 0x10;
const OP_QUERY: u8 = 0x11;
const OP_QUERY_BATCH: u8 = 0x12;
const OP_METRICS: u8 = 0x13;
const OP_SHUTDOWN: u8 = 0x14;
const OP_RELOAD: u8 = 0x15;
const OP_LABEL: u8 = 0x16;
const OP_LABEL_BATCH: u8 = 0x17;
const OP_PONG: u8 = 0x90;
const OP_DISTANCE: u8 = 0x91;
const OP_DISTANCE_BATCH: u8 = 0x92;
const OP_METRICS_SNAPSHOT: u8 = 0x93;
const OP_SHUTDOWN_ACK: u8 = 0x94;
const OP_RELOAD_ACK: u8 = 0x95;
const OP_LABEL_RESP: u8 = 0x96;
const OP_LABEL_BATCH_RESP: u8 = 0x97;
const OP_ERROR: u8 = 0xEE;

/// Typed error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A query named a vertex outside the labeling.
    NodeOutOfRange,
    /// The request frame did not decode.
    Malformed,
    /// The request frame exceeded the server's frame cap.
    FrameTooLarge,
    /// The client's protocol version is not spoken here.
    VersionMismatch,
    /// The server is at its connection cap.
    Busy,
    /// The server is draining and no longer answers queries.
    ShuttingDown,
    /// Anything else (engine failure, i/o while answering).
    Internal,
    /// The request decoded but names an operation this server refuses
    /// to perform (e.g. remote shutdown with
    /// `allow_remote_shutdown = false`).
    Unsupported,
}

impl ErrorCode {
    /// Wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::NodeOutOfRange => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::FrameTooLarge => 3,
            ErrorCode::VersionMismatch => 4,
            ErrorCode::Busy => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Unsupported => 8,
        }
    }

    /// Decodes a wire error code.
    pub fn from_u16(code: u16) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::NodeOutOfRange),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::FrameTooLarge),
            4 => Some(ErrorCode::VersionMismatch),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::ShuttingDown),
            7 => Some(ErrorCode::Internal),
            8 => Some(ErrorCode::Unsupported),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::NodeOutOfRange => "node-out-of-range",
            ErrorCode::Malformed => "malformed-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Unsupported => "unsupported",
        };
        write!(f, "{name}")
    }
}

/// Everything that can go wrong reading or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream failure (includes timeouts).
    Io(io::Error),
    /// A frame declared a payload longer than the cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The enforced cap.
        max: u32,
    },
    /// A zero-length payload (every frame needs at least an opcode).
    EmptyFrame,
    /// The body ended before a field did.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left in the body.
        available: usize,
    },
    /// The body kept going after the message ended.
    TrailingBytes(usize),
    /// The handshake magic was wrong — not an HLNP peer.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version we do not.
    Version {
        /// The version this module speaks.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// An opcode this decoder does not know.
    UnknownOpcode(u8),
    /// A structurally valid frame with nonsense content (bad error code,
    /// batch length over the cap, non-UTF-8 error text, ...).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            WireError::EmptyFrame => write!(f, "empty frame (no opcode)"),
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after message body")
            }
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:?}: not an HLNP peer"),
            WireError::Version { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak {ours}, peer speaks {theirs}"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Invalid(msg) => write!(f, "invalid frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` when the error is a socket-level failure (worth a retry on
    /// a fresh connection) rather than a protocol-level one (not).
    pub fn is_io(&self) -> bool {
        matches!(self, WireError::Io(_))
    }
}

/// Checked sequential reader over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated {
            needed: n,
            available: self.buf.len().saturating_sub(self.at),
        })?;
        let slice = self.buf.get(self.at..end).ok_or(WireError::Truncated {
            needed: n,
            available: self.buf.len().saturating_sub(self.at),
        })?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Bytes left in the body.
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }

    /// The body must be fully consumed: trailing bytes are an error.
    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

/// Writes one frame (length prefix + payload) to `w` as a single write,
/// so a framed message never straddles two TCP segments needlessly.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        len: u32::MAX,
        max: DEFAULT_MAX_FRAME_LEN,
    })?;
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame payload from `r`, enforcing the length cap *before*
/// buffering the body so an adversarial length prefix cannot balloon
/// memory. Partial reads are handled by `read_exact`; a peer that stops
/// mid-frame surfaces as [`WireError::Io`] (timeout or unexpected EOF).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Vec<u8>, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A transport whose per-call read/write timeouts can be re-armed, which
/// is what whole-frame deadlines are built from.
///
/// Plain socket timeouts reset on *every* byte: a peer trickling one byte
/// per `timeout - ε` keeps a connection (and its server slot) alive
/// forever — the slow-loris attack. [`read_frame_deadline`] and
/// [`write_frame_deadline`] instead budget the whole frame, shrinking the
/// socket timeout toward the deadline on each iteration.
pub trait DeadlineIo: Read + Write {
    /// Caps the next read call at `timeout`.
    fn limit_read_timeout(&mut self, timeout: Duration) -> io::Result<()>;
    /// Caps the next write call at `timeout`.
    fn limit_write_timeout(&mut self, timeout: Duration) -> io::Result<()>;
}

impl DeadlineIo for TcpStream {
    fn limit_read_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }

    fn limit_write_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.set_write_timeout(Some(timeout))
    }
}

fn deadline_expired(what: &str) -> WireError {
    WireError::Io(io::Error::new(
        io::ErrorKind::TimedOut,
        format!("{what}: whole-frame deadline exceeded"),
    ))
}

/// `true` for the error kinds a timed-out socket read/write reports.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` from `r`, giving up at `deadline`. Each loop iteration
/// re-arms the socket timeout with the time left, so a peer dribbling
/// bytes cannot extend the total beyond the budget.
fn read_exact_deadline<R: DeadlineIo>(
    r: &mut R,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(deadline_expired("read"));
        }
        r.limit_read_timeout(left.max(Duration::from_millis(1)))?;
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(deadline_expired("read")),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame like [`read_frame`], but with two time budgets: the
/// connection may sit idle (no frame started) for up to `idle_budget`,
/// and once the first byte of a frame arrives the *entire* frame — length
/// prefix and payload — must complete within `frame_budget`. Expiry of
/// either surfaces as [`WireError::Io`] with [`io::ErrorKind::TimedOut`].
pub fn read_frame_deadline<R: DeadlineIo>(
    r: &mut R,
    max_len: u32,
    idle_budget: Duration,
    frame_budget: Duration,
) -> Result<Vec<u8>, WireError> {
    // Wait for the first byte under the idle budget alone.
    r.limit_read_timeout(idle_budget.max(Duration::from_millis(1)))?;
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed before a frame",
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // A frame has begun: the rest of it races the frame budget.
    let deadline = Instant::now() + frame_budget;
    let mut rest = [0u8; 3];
    read_exact_deadline(r, &mut rest, deadline)?;
    let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_deadline(r, &mut payload, deadline)?;
    Ok(payload)
}

/// Writes one frame like [`write_frame`], but bounds the *whole* write
/// (all partial writes included) by `budget`, so a peer that stops
/// draining its receive buffer cannot pin the writer past the deadline.
pub fn write_frame_deadline<W: DeadlineIo>(
    w: &mut W,
    payload: &[u8],
    budget: Duration,
) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        len: u32::MAX,
        max: DEFAULT_MAX_FRAME_LEN,
    })?;
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(payload);

    let deadline = Instant::now() + budget;
    let mut written = 0;
    while written < framed.len() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(deadline_expired("write"));
        }
        w.limit_write_timeout(left.max(Duration::from_millis(1)))?;
        match w.write(&framed[written..]) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-frame",
                )))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(deadline_expired("write")),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    w.flush()?;
    Ok(())
}

/// Prefixes `inner` (an encoded [`Request`] or [`Response`]) with the
/// little-endian request id, producing a protocol-v2 frame payload.
pub fn encode_mux(request_id: u64, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + inner.len());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(inner);
    out
}

/// Splits a protocol-v2 frame payload into its request id and the inner
/// v1 payload. A payload too short to even hold the id (or holding
/// nothing after it) is [`WireError::Truncated`] — the peer broke the
/// mux framing, but the *frame boundary* is intact, so the connection
/// can answer with a typed error and keep serving.
pub fn split_mux(payload: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let Some(id_bytes) = payload.get(..8) else {
        return Err(WireError::Truncated {
            needed: 8,
            available: payload.len(),
        });
    };
    let id = u64::from_le_bytes([
        id_bytes[0],
        id_bytes[1],
        id_bytes[2],
        id_bytes[3],
        id_bytes[4],
        id_bytes[5],
        id_bytes[6],
        id_bytes[7],
    ]);
    let inner = &payload[8..];
    if inner.is_empty() {
        return Err(WireError::EmptyFrame);
    }
    Ok((id, inner))
}

/// First frame on a connection, server to client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The *highest* protocol version the server speaks; the client may
    /// pick this or anything lower (down to 1) in its [`ClientHello`].
    pub protocol_version: u16,
    /// Format version of the label store being served (HLBS version).
    pub store_version: u16,
    /// Number of vertices the served labeling covers.
    pub num_nodes: u64,
}

impl ServerHello {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.push(OP_SERVER_HELLO);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.protocol_version.to_le_bytes());
        out.extend_from_slice(&self.store_version.to_le_bytes());
        out.extend_from_slice(&self.num_nodes.to_le_bytes());
        out
    }

    /// Decodes a frame payload; checks magic but *not* the version, so
    /// the caller can render a precise mismatch error.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        if op != OP_SERVER_HELLO {
            return Err(WireError::UnknownOpcode(op));
        }
        let magic: [u8; 4] = c.take(4)?.try_into().map_err(|_| WireError::Truncated {
            needed: 4,
            available: 0,
        })?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let hello = ServerHello {
            protocol_version: c.u16()?,
            store_version: c.u16()?,
            num_nodes: c.u64()?,
        };
        c.finish()?;
        Ok(hello)
    }
}

/// Second frame on a connection, client to server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// The protocol version this connection will speak — the client's
    /// pick, at most the [`ServerHello`]'s advertised ceiling.
    pub protocol_version: u16,
}

impl ClientHello {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7);
        out.push(OP_CLIENT_HELLO);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.protocol_version.to_le_bytes());
        out
    }

    /// Decodes a frame payload, checking magic.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        if op != OP_CLIENT_HELLO {
            return Err(WireError::UnknownOpcode(op));
        }
        let magic: [u8; 4] = c.take(4)?.try_into().map_err(|_| WireError::Truncated {
            needed: 4,
            available: 0,
        })?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let hello = ClientHello {
            protocol_version: c.u16()?,
        };
        c.finish()?;
        Ok(hello)
    }
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One distance query.
    Query {
        /// Source vertex.
        u: u32,
        /// Target vertex.
        v: u32,
    },
    /// Many distance queries answered in one frame.
    QueryBatch(Vec<(u32, u32)>),
    /// Ask for the server's metrics snapshot.
    Metrics,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Ask the daemon to swap in a new store from a path on *its own*
    /// filesystem — zero-downtime reload. Gated server-side like remote
    /// shutdown; the daemon fully validates the file before the swap, so
    /// a bad path or corrupt store is a typed error and the old epoch
    /// keeps serving.
    Reload {
        /// Store path as the server sees it.
        path: String,
    },
    /// Fetch one vertex's label — the building block of sharded serving:
    /// a router joins two labels fetched from their owning shards.
    Label {
        /// The vertex whose label to ship.
        v: u32,
    },
    /// Fetch many labels in one frame.
    LabelBatch(Vec<u32>),
}

impl Request {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => vec![OP_PING],
            Request::Query { u, v } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_QUERY);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            Request::QueryBatch(pairs) => {
                let mut out = Vec::with_capacity(5 + pairs.len() * 8);
                out.push(OP_QUERY_BATCH);
                // A count beyond u32 saturates instead of truncating; the
                // resulting length mismatch (and the frame-size cap) makes
                // the peer reject the frame rather than misread it.
                let count = u32::try_from(pairs.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&count.to_le_bytes());
                for &(u, v) in pairs {
                    out.extend_from_slice(&u.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Request::Metrics => vec![OP_METRICS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Reload { path } => {
                let bytes = path.as_bytes();
                let mut out = Vec::with_capacity(5 + bytes.len());
                out.push(OP_RELOAD);
                // Saturate rather than truncate; see QueryBatch above.
                let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
            Request::Label { v } => {
                let mut out = Vec::with_capacity(5);
                out.push(OP_LABEL);
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            Request::LabelBatch(vs) => {
                let mut out = Vec::with_capacity(5 + vs.len() * 4);
                out.push(OP_LABEL_BATCH);
                let count = u32::try_from(vs.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&count.to_le_bytes());
                for &v in vs {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
        }
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            OP_PING => Request::Ping,
            OP_QUERY => Request::Query {
                u: c.u32()?,
                v: c.u32()?,
            },
            OP_QUERY_BATCH => {
                let count = c.u32()?;
                if count > MAX_BATCH_LEN {
                    return Err(WireError::Invalid(format!(
                        "batch of {count} pairs exceeds cap of {MAX_BATCH_LEN}"
                    )));
                }
                // The count is attacker-controlled: check it against the
                // bytes actually present before reserving for it, so a
                // 13-byte frame cannot demand a 1 MiB allocation.
                if count as usize * 8 > c.remaining() {
                    return Err(WireError::Truncated {
                        needed: count as usize * 8,
                        available: c.remaining(),
                    });
                }
                let mut pairs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    pairs.push((c.u32()?, c.u32()?));
                }
                Request::QueryBatch(pairs)
            }
            OP_METRICS => Request::Metrics,
            OP_SHUTDOWN => Request::Shutdown,
            OP_RELOAD => {
                let len = c.u32()?;
                if len > MAX_RELOAD_PATH_LEN {
                    return Err(WireError::Invalid(format!(
                        "reload path of {len} bytes exceeds cap of {MAX_RELOAD_PATH_LEN}"
                    )));
                }
                let bytes = c.take(len as usize)?;
                let path = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::Invalid("reload path is not UTF-8".into()))?;
                Request::Reload { path }
            }
            OP_LABEL => Request::Label { v: c.u32()? },
            OP_LABEL_BATCH => {
                let count = c.u32()?;
                if count > MAX_LABEL_BATCH_LEN {
                    return Err(WireError::Invalid(format!(
                        "label batch of {count} vertices exceeds cap of {MAX_LABEL_BATCH_LEN}"
                    )));
                }
                // Attacker-controlled count: check against the bytes that
                // are actually present before allocating for it.
                if count as usize * 4 > c.remaining() {
                    return Err(WireError::Truncated {
                        needed: count as usize * 4,
                        available: c.remaining(),
                    });
                }
                let mut vs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    vs.push(c.u32()?);
                }
                Request::LabelBatch(vs)
            }
            op => return Err(WireError::UnknownOpcode(op)),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Query`].
    Distance(Distance),
    /// Answer to [`Request::QueryBatch`], in request order.
    DistanceBatch(Vec<Distance>),
    /// Answer to [`Request::Metrics`].
    Metrics(MetricsSnapshot),
    /// Answer to [`Request::Shutdown`]; the connection closes after.
    ShutdownAck,
    /// Answer to [`Request::Reload`]: the swap happened.
    ReloadAck {
        /// The new epoch serial now being served.
        epoch: u64,
        /// Vertex count of the newly served store.
        num_nodes: u64,
    },
    /// Answer to [`Request::Label`]: the vertex's `(hub, distance)`
    /// pairs in increasing hub order.
    Label(Vec<(u32, Distance)>),
    /// Answer to [`Request::LabelBatch`], labels in request order.
    LabelBatch(Vec<Vec<(u32, Distance)>>),
    /// Typed failure; the server never closes a live connection without
    /// one except on socket death.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => vec![OP_PONG],
            Response::Distance(d) => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_DISTANCE);
                out.extend_from_slice(&d.to_le_bytes());
                out
            }
            Response::DistanceBatch(ds) => {
                let mut out = Vec::with_capacity(5 + ds.len() * 8);
                out.push(OP_DISTANCE_BATCH);
                // Saturate rather than truncate; see Request::QueryBatch.
                let count = u32::try_from(ds.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&count.to_le_bytes());
                for &d in ds {
                    out.extend_from_slice(&d.to_le_bytes());
                }
                out
            }
            Response::Metrics(s) => {
                let mut out = Vec::with_capacity(1 + 14 * 8);
                out.push(OP_METRICS_SNAPSHOT);
                for field in [
                    s.single_queries,
                    s.batches,
                    s.batch_queries,
                    s.cache_hits,
                    s.cache_misses,
                    s.decode_errors,
                    s.connections_opened,
                    s.connections_rejected,
                    s.net_requests,
                    s.net_errors,
                    s.latency_count,
                    s.p50_ns,
                    s.p95_ns,
                    s.p99_ns,
                ] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
                out
            }
            Response::ShutdownAck => vec![OP_SHUTDOWN_ACK],
            Response::ReloadAck { epoch, num_nodes } => {
                let mut out = Vec::with_capacity(17);
                out.push(OP_RELOAD_ACK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&num_nodes.to_le_bytes());
                out
            }
            Response::Label(pairs) => {
                let mut out = Vec::with_capacity(5 + pairs.len() * 12);
                out.push(OP_LABEL_RESP);
                encode_label_pairs(&mut out, pairs);
                out
            }
            Response::LabelBatch(labels) => {
                let total: usize = labels.iter().map(|l| 4 + l.len() * 12).sum();
                let mut out = Vec::with_capacity(5 + total);
                out.push(OP_LABEL_BATCH_RESP);
                // Saturate rather than truncate; see QueryBatch above.
                let count = u32::try_from(labels.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&count.to_le_bytes());
                for label in labels {
                    encode_label_pairs(&mut out, label);
                }
                out
            }
            Response::Error { code, message } => {
                let bytes = message.as_bytes();
                let mut out = Vec::with_capacity(7 + bytes.len());
                out.push(OP_ERROR);
                out.extend_from_slice(&code.as_u16().to_le_bytes());
                // Saturate rather than truncate; see Request::QueryBatch.
                let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
        }
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            OP_PONG => Response::Pong,
            OP_DISTANCE => Response::Distance(c.u64()?),
            OP_DISTANCE_BATCH => {
                let count = c.u32()?;
                if count > MAX_BATCH_LEN {
                    return Err(WireError::Invalid(format!(
                        "batch of {count} distances exceeds cap of {MAX_BATCH_LEN}"
                    )));
                }
                // As with QueryBatch: validate the declared count against
                // the body before allocating for it.
                if count as usize * 8 > c.remaining() {
                    return Err(WireError::Truncated {
                        needed: count as usize * 8,
                        available: c.remaining(),
                    });
                }
                let mut ds = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ds.push(c.u64()?);
                }
                Response::DistanceBatch(ds)
            }
            OP_METRICS_SNAPSHOT => {
                let mut fields = [0u64; 14];
                for f in fields.iter_mut() {
                    *f = c.u64()?;
                }
                Response::Metrics(MetricsSnapshot {
                    single_queries: fields[0],
                    batches: fields[1],
                    batch_queries: fields[2],
                    cache_hits: fields[3],
                    cache_misses: fields[4],
                    decode_errors: fields[5],
                    connections_opened: fields[6],
                    connections_rejected: fields[7],
                    net_requests: fields[8],
                    net_errors: fields[9],
                    latency_count: fields[10],
                    p50_ns: fields[11],
                    p95_ns: fields[12],
                    p99_ns: fields[13],
                })
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            OP_RELOAD_ACK => Response::ReloadAck {
                epoch: c.u64()?,
                num_nodes: c.u64()?,
            },
            OP_LABEL_RESP => Response::Label(decode_label_pairs(&mut c)?),
            OP_LABEL_BATCH_RESP => {
                let count = c.u32()?;
                // Each label needs at least its own 4-byte count; check
                // the outer count against that before allocating.
                if count as usize * 4 > c.remaining() {
                    return Err(WireError::Truncated {
                        needed: count as usize * 4,
                        available: c.remaining(),
                    });
                }
                let mut labels = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    labels.push(decode_label_pairs(&mut c)?);
                }
                Response::LabelBatch(labels)
            }
            OP_ERROR => {
                let raw = c.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| WireError::Invalid(format!("unknown error code {raw}")))?;
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::Invalid("error text is not UTF-8".into()))?;
                Response::Error { code, message }
            }
            op => return Err(WireError::UnknownOpcode(op)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Encodes one label as `count: u32` then `count` × `(hub u32, dist u64)`.
fn encode_label_pairs(out: &mut Vec<u8>, pairs: &[(u32, Distance)]) {
    // Saturate rather than truncate; see Request::QueryBatch.
    let count = u32::try_from(pairs.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&count.to_le_bytes());
    for &(h, d) in pairs {
        out.extend_from_slice(&h.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
}

/// Decodes one label; the declared entry count is validated against the
/// bytes actually remaining before any allocation.
fn decode_label_pairs(c: &mut Cursor<'_>) -> Result<Vec<(u32, Distance)>, WireError> {
    let count = c.u32()?;
    if count as usize * 12 > c.remaining() {
        return Err(WireError::Truncated {
            needed: count as usize * 12,
            available: c.remaining(),
        });
    }
    let mut pairs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        pairs.push((c.u32()?, c.u64()?));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Query { u: 3, v: 99 });
        roundtrip_req(Request::QueryBatch(vec![]));
        roundtrip_req(Request::QueryBatch(vec![(0, 1), (7, 7), (u32::MAX, 0)]));
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Reload {
            path: "/data/stores/rmat1m.hlbs".into(),
        });
        roundtrip_req(Request::Label { v: 12345 });
        roundtrip_req(Request::LabelBatch(vec![]));
        roundtrip_req(Request::LabelBatch(vec![0, 7, u32::MAX]));
    }

    #[test]
    fn label_and_reload_responses_roundtrip() {
        roundtrip_resp(Response::ReloadAck {
            epoch: 3,
            num_nodes: 1_048_576,
        });
        roundtrip_resp(Response::Label(vec![]));
        roundtrip_resp(Response::Label(vec![(0, 0), (9, u64::MAX)]));
        roundtrip_resp(Response::LabelBatch(vec![]));
        roundtrip_resp(Response::LabelBatch(vec![
            vec![(0, 0), (3, 2)],
            vec![],
            vec![(7, 1)],
        ]));
    }

    #[test]
    fn reload_path_lies_are_rejected() {
        // Declared path length over the cap.
        let mut payload = vec![0x15u8]; // OP_RELOAD
        payload.extend_from_slice(&(MAX_RELOAD_PATH_LEN + 1).to_le_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Invalid(_))
        ));
        // Declared length longer than the body.
        let mut payload = vec![0x15u8];
        payload.extend_from_slice(&100u32.to_le_bytes());
        payload.extend_from_slice(b"short");
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        // Non-UTF-8 path bytes.
        let mut payload = vec![0x15u8];
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn label_count_lies_are_rejected_before_allocation() {
        // A Label response declaring far more entries than the body holds.
        let mut payload = vec![0x96u8]; // OP_LABEL_RESP
        payload.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            Response::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        // An outer LabelBatch count with no inner bodies behind it.
        let mut payload = vec![0x97u8]; // OP_LABEL_BATCH_RESP
        payload.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            Response::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        // A LabelBatch request with a lying vertex count.
        let mut payload = vec![0x17u8]; // OP_LABEL_BATCH
        payload.extend_from_slice(&50u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Distance(0));
        roundtrip_resp(Response::Distance(u64::MAX));
        roundtrip_resp(Response::DistanceBatch(vec![1, 2, 3]));
        roundtrip_resp(Response::ShutdownAck);
        roundtrip_resp(Response::Error {
            code: ErrorCode::NodeOutOfRange,
            message: "node 42 out of range".into(),
        });
        let snap = MetricsSnapshot {
            single_queries: 1,
            batches: 2,
            batch_queries: 3,
            cache_hits: 4,
            cache_misses: 5,
            decode_errors: 6,
            connections_opened: 7,
            connections_rejected: 8,
            net_requests: 9,
            net_errors: 10,
            latency_count: 11,
            p50_ns: 12,
            p95_ns: 13,
            p99_ns: 14,
        };
        roundtrip_resp(Response::Metrics(snap));
    }

    #[test]
    fn hellos_roundtrip() {
        let sh = ServerHello {
            protocol_version: PROTOCOL_VERSION,
            store_version: 1,
            num_nodes: 12_000,
        };
        assert_eq!(ServerHello::decode(&sh.encode()).unwrap(), sh);
        let ch = ClientHello {
            protocol_version: PROTOCOL_VERSION,
        };
        assert_eq!(ClientHello::decode(&ch.encode()).unwrap(), ch);
    }

    #[test]
    fn mux_framing_roundtrips_and_rejects_short_payloads() {
        let inner = Request::Query { u: 3, v: 9 }.encode();
        let framed = encode_mux(0xDEAD_BEEF_CAFE_F00D, &inner);
        let (id, body) = split_mux(&framed).unwrap();
        assert_eq!(id, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(
            Request::decode(body).unwrap(),
            Request::Query { u: 3, v: 9 }
        );

        // Extreme ids survive the round trip.
        for id in [0u64, 1, u64::MAX] {
            let framed = encode_mux(id, &Response::Pong.encode());
            assert_eq!(split_mux(&framed).unwrap().0, id);
        }

        // Shorter than the id itself: typed truncation, never a panic.
        for cut in 0..8 {
            assert!(matches!(
                split_mux(&framed[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
        // Exactly the id with no inner payload: an empty message.
        assert!(matches!(
            split_mux(&framed[..8]),
            Err(WireError::EmptyFrame)
        ));
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let full = Request::Query { u: 5, v: 9 }.encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
        let full = Response::Error {
            code: ErrorCode::Internal,
            message: "boom".into(),
        }
        .encode();
        for cut in 1..full.len() {
            assert!(Response::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn batch_length_lies_are_rejected() {
        // Declared count larger than the body actually carries.
        let mut payload = vec![0x12u8]; // OP_QUERY_BATCH
        payload.extend_from_slice(&10u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 8]); // only one pair present
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        // Declared count over the protocol cap.
        let mut payload = vec![0x12u8];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            Request::decode(&[0x7f]),
            Err(WireError::UnknownOpcode(0x7f))
        ));
        assert!(matches!(
            Response::decode(&[0x00]),
            Err(WireError::UnknownOpcode(0x00))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut payload = ServerHello {
            protocol_version: 1,
            store_version: 1,
            num_nodes: 5,
        }
        .encode();
        payload[1] = b'X';
        assert!(matches!(
            ServerHello::decode(&payload),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn batch_count_checked_before_allocation() {
        // A 5-byte DistanceBatch frame declaring MAX_BATCH_LEN entries:
        // the decoder must reject it from the byte count alone (Truncated)
        // rather than reserving count * 8 bytes first.
        let mut payload = vec![0x92u8]; // OP_DISTANCE_BATCH
        payload.extend_from_slice(&MAX_BATCH_LEN.to_le_bytes());
        assert!(matches!(
            Response::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        let mut payload = vec![0x12u8]; // OP_QUERY_BATCH
        payload.extend_from_slice(&MAX_BATCH_LEN.to_le_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
    }

    /// Test transport: serves reads from a buffer one byte at a time with
    /// a fixed delay per byte (a slow-loris peer when the delay is large),
    /// and accepts writes one byte at a time with the same delay. The
    /// timeout hooks are no-ops — the deadline logic being tested must
    /// bound total time by itself via the wall clock.
    struct TricklePeer {
        data: Vec<u8>,
        at: usize,
        delay: std::time::Duration,
        written: Vec<u8>,
    }

    impl TricklePeer {
        fn new(data: Vec<u8>, delay: std::time::Duration) -> Self {
            TricklePeer {
                data,
                at: 0,
                delay,
                written: Vec::new(),
            }
        }
    }

    impl Read for TricklePeer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(self.delay);
            if self.at >= self.data.len() {
                return Ok(0); // peer closed
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    impl Write for TricklePeer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            std::thread::sleep(self.delay);
            if buf.is_empty() {
                return Ok(0);
            }
            self.written.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl DeadlineIo for TricklePeer {
        fn limit_read_timeout(&mut self, _: Duration) -> io::Result<()> {
            Ok(())
        }

        fn limit_write_timeout(&mut self, _: Duration) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn deadline_read_accepts_a_dribbled_frame_within_budget() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        let mut peer = TricklePeer::new(buf, Duration::from_millis(0));
        let payload = read_frame_deadline(
            &mut peer,
            64,
            Duration::from_secs(1),
            Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(payload, Request::Ping.encode());
    }

    #[test]
    fn deadline_read_cuts_off_a_slow_loris_peer() {
        // 36 bytes at 10 ms/byte is 360 ms of trickle; a 60 ms frame
        // budget must cut it off near the budget, not ride it out.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 32]).unwrap();
        let mut peer = TricklePeer::new(buf, Duration::from_millis(10));
        let started = Instant::now();
        let err = read_frame_deadline(
            &mut peer,
            64,
            Duration::from_secs(1),
            Duration::from_millis(60),
        );
        let elapsed = started.elapsed();
        match err {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_millis(300),
            "deadline must bound the whole frame, took {elapsed:?}"
        );
    }

    #[test]
    fn deadline_write_cuts_off_a_stalled_peer() {
        let mut peer = TricklePeer::new(Vec::new(), Duration::from_millis(10));
        let started = Instant::now();
        let err = write_frame_deadline(&mut peer, &[0u8; 32], Duration::from_millis(60));
        let elapsed = started.elapsed();
        match err {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(elapsed < Duration::from_millis(300));
    }

    #[test]
    fn deadline_write_delivers_within_budget() {
        let mut peer = TricklePeer::new(Vec::new(), Duration::from_millis(0));
        write_frame_deadline(&mut peer, &Request::Ping.encode(), Duration::from_secs(1)).unwrap();
        let mut expect = Vec::new();
        write_frame(&mut expect, &Request::Ping.encode()).unwrap();
        assert_eq!(peer.written, expect);
    }

    #[test]
    fn frame_io_roundtrip_and_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), Request::Ping.encode());

        // Oversized declared length is rejected before buffering.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::FrameTooLarge { .. })
        ));

        // Zero-length frame is rejected.
        let zero = 0u32.to_le_bytes();
        let mut r = &zero[..];
        assert!(matches!(read_frame(&mut r, 64), Err(WireError::EmptyFrame)));

        // A frame cut mid-body is an i/o error, not a hang or panic.
        let mut cut = Vec::new();
        write_frame(&mut cut, &[1, 2, 3, 4]).unwrap();
        cut.truncate(6);
        let mut r = &cut[..];
        assert!(matches!(read_frame(&mut r, 64), Err(WireError::Io(_))));
    }
}
