//! The crate-wide error type for client and server operations.

use std::fmt;
use std::io;

use crate::wire::{ErrorCode, WireError};

/// Everything the TCP stack can fail with, on either side of the socket.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure: connect, bind, read, write, timeout.
    Io(io::Error),
    /// A frame failed to read or decode.
    Wire(WireError),
    /// The handshake did not complete (bad magic, wrong version, or the
    /// peer closed early).
    Handshake(String),
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable cause from the wire.
        code: ErrorCode,
        /// Human-readable detail from the wire.
        message: String,
    },
    /// The server answered, but with the wrong response kind.
    UnexpectedResponse {
        /// What the request called for.
        expected: &'static str,
        /// What actually arrived.
        got: String,
    },
    /// Every reconnect attempt failed; holds the final error.
    RetriesExhausted {
        /// Total attempts made (first try plus retries).
        attempts: u32,
        /// The error the last attempt died with.
        last: Box<NetError>,
    },
    /// A multiplexed request's deadline passed with no response; other
    /// requests on the same connection are unaffected.
    RequestTimeout {
        /// The request id that went unanswered.
        request_id: u64,
        /// How long the caller was willing to wait.
        waited: std::time::Duration,
    },
    /// The multiplexed connection died (reader failure or shutdown);
    /// every in-flight and future request on it fails with this. The
    /// reason is a rendered copy of the original error, shared by all
    /// waiters.
    ConnectionDead(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            NetError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            NetError::UnexpectedResponse { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            NetError::RequestTimeout { request_id, waited } => {
                write!(f, "request {request_id} unanswered after {waited:?}")
            }
            NetError::ConnectionDead(reason) => {
                write!(f, "multiplexed connection is dead: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            // Socket errors keep their i/o identity so retry policy can
            // tell a dead connection from a protocol violation.
            WireError::Io(io) => NetError::Io(io),
            other => NetError::Wire(other),
        }
    }
}

impl NetError {
    /// `true` for failures a fresh connection might fix (socket death,
    /// timeouts); protocol and server-side errors are not retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) => true,
            NetError::Handshake(_) => false,
            NetError::Wire(_) => false,
            NetError::Remote { code, .. } => *code == ErrorCode::Busy,
            NetError::UnexpectedResponse { .. } => false,
            NetError::RetriesExhausted { .. } => false,
            // A fresh *connection* might fix these, but the mux client
            // owns its connection's lifecycle; callers reconnect
            // deliberately rather than through blind retry.
            NetError::RequestTimeout { .. } => false,
            NetError::ConnectionDead(_) => false,
        }
    }
}
