//! Multiplexed HLNP v2 client: many concurrent requests on one
//! connection, correlated by request id.
//!
//! [`MuxClient`] speaks protocol v2, where every frame payload is
//! prefixed with a caller-chosen `request_id: u64` and the server may
//! answer out of order. One dedicated reader thread drains the socket
//! and routes each response to the waiter that submitted its id;
//! writers share the socket behind a mutex. The result:
//!
//! - **Concurrency without connections.** Hundreds of requests ride one
//!   TCP stream; a slow query does not block the answers behind it.
//! - **Per-request deadlines.** [`MuxClient::wait`] bounds one request;
//!   a request that times out abandons only its own slot, and its late
//!   response (if any) is dropped on arrival instead of being
//!   misdelivered to a future request.
//! - **Shared fate on transport death.** If the socket or framing
//!   breaks, the reader marks the connection dead with the rendered
//!   error and every in-flight and future request fails with
//!   [`NetError::ConnectionDead`]; responses that had already arrived
//!   still deliver.
//!
//! The split API ([`MuxClient::submit`] then [`MuxClient::wait`]) is the
//! point: callers fan out submissions and collect completions in any
//! order. The blocking convenience methods (`query`, `label_batch`, …)
//! mirror [`crate::NetClient`] one-for-one for drop-in use — they are
//! just `submit` + `wait` and interleave freely with other threads'
//! requests on the same client.
//!
//! Request ids are a process-local monotonic counter starting at 1 (0 is
//! the server's "could not even parse an id" sentinel), so ids never
//! repeat within a connection and a duplicate-id race cannot exist by
//! construction.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hl_graph::sync::lock_unpoisoned;
use hl_graph::{Distance, NodeId};
use hl_server::MetricsSnapshot;

use crate::client::ClientConfig;
use crate::error::NetError;
use crate::wire::{
    encode_mux, read_frame, read_frame_deadline, split_mux, write_frame_deadline, ClientHello,
    Request, Response, ServerHello, PROTOCOL_V2,
};

/// What every thread touching the connection shares.
struct Shared {
    state: Mutex<MuxState>,
    cv: Condvar,
}

/// The correlation table, guarded by [`Shared::state`].
struct MuxState {
    /// One entry per in-flight request: `None` until its response lands.
    /// A waiter that gives up removes its entry, which is exactly what
    /// makes the late response droppable instead of deliverable.
    slots: HashMap<u64, Option<Response>>,
    /// Set once by the reader when the transport dies; the rendered
    /// error every subsequent failure reports.
    dead: Option<String>,
}

/// A multiplexing client for one HLNP v2 daemon connection.
///
/// All methods take `&self`: clone nothing, share one instance across
/// threads (or keep it single-threaded and pipeline by interleaving
/// `submit`s before `wait`s).
pub struct MuxClient {
    shared: Arc<Shared>,
    /// The write half (a `try_clone` twin of the reader's stream).
    writer: Mutex<TcpStream>,
    hello: ServerHello,
    addr: SocketAddr,
    config: ClientConfig,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl MuxClient {
    /// Resolves `addr`, connects, and negotiates protocol v2. Fails with
    /// [`NetError::Handshake`] against a server whose advertised ceiling
    /// is below v2 (use [`crate::NetClient`] for those).
    pub fn connect<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> Result<Self, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Handshake("address resolved to nothing".into()))?;
        let mut stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let timeout = config.request_timeout;
        let payload = read_frame_deadline(&mut stream, config.max_frame_len, timeout, timeout)?;
        let hello = ServerHello::decode(&payload)?;
        if hello.protocol_version < PROTOCOL_V2 {
            return Err(NetError::Handshake(format!(
                "server's highest protocol is {}, multiplexing needs v{PROTOCOL_V2}",
                hello.protocol_version
            )));
        }
        write_frame_deadline(
            &mut stream,
            &ClientHello {
                protocol_version: PROTOCOL_V2,
            }
            .encode(),
            timeout,
        )?;
        let writer = stream.try_clone()?;
        // The reader blocks on whole frames with no deadline of its own:
        // per-request deadlines belong to the waiters, and `Drop` frees
        // the thread by shutting the socket down under it.
        stream.set_read_timeout(None)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(MuxState {
                slots: HashMap::new(),
                dead: None,
            }),
            cv: Condvar::new(),
        });
        let reader_shared = Arc::clone(&shared);
        let max_frame_len = config.max_frame_len;
        let reader = std::thread::Builder::new()
            .name("hlnet-mux-reader".to_string())
            .spawn(move || reader_loop(stream, &reader_shared, max_frame_len))?;
        Ok(MuxClient {
            shared,
            writer: Mutex::new(writer),
            hello,
            addr,
            config,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// The server hello from the handshake.
    pub fn server_hello(&self) -> &ServerHello {
        &self.hello
    }

    /// The address this client dialed.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of vertices the served labeling covered at handshake time.
    pub fn num_nodes(&self) -> u64 {
        self.hello.num_nodes
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        lock_unpoisoned(&self.shared.state).slots.len()
    }

    /// Sends `request` and returns its id without waiting; pair with
    /// [`MuxClient::wait`]. Submissions from any number of threads
    /// interleave on the wire (each frame is written atomically under
    /// the writer lock, within the write budget).
    pub fn submit(&self, request: &Request) -> Result<u64, NetError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            if let Some(reason) = &state.dead {
                return Err(NetError::ConnectionDead(reason.clone()));
            }
            state.slots.insert(id, None);
        }
        let payload = encode_mux(id, &request.encode());
        let wrote = {
            let mut writer = lock_unpoisoned(&self.writer);
            write_frame_deadline(&mut *writer, &payload, self.config.request_timeout)
        };
        if let Err(e) = wrote {
            // Nothing (or half a frame) went out: the slot will never
            // fill, so reclaim it rather than leak it.
            lock_unpoisoned(&self.shared.state).slots.remove(&id);
            return Err(e.into());
        }
        Ok(id)
    }

    /// Blocks until request `id` answers or `deadline` passes. On
    /// timeout the slot is abandoned — its late response (if one ever
    /// comes) is dropped by the reader — and only this request fails;
    /// everything else in flight keeps waiting undisturbed.
    pub fn wait(&self, id: u64, deadline: Duration) -> Result<Response, NetError> {
        let started = Instant::now();
        let mut state = lock_unpoisoned(&self.shared.state);
        loop {
            match state.slots.get(&id) {
                Some(Some(_)) => {
                    // Filled: take it. (Entry API would borrow-conflict
                    // with the check above; the double lookup is cheap.)
                    let Some(Some(resp)) = state.slots.remove(&id) else {
                        return Err(NetError::ConnectionDead(
                            "response slot vanished mid-delivery".to_string(),
                        ));
                    };
                    return Ok(resp);
                }
                Some(None) => {
                    if let Some(reason) = &state.dead {
                        let reason = reason.clone();
                        state.slots.remove(&id);
                        return Err(NetError::ConnectionDead(reason));
                    }
                }
                None => {
                    // Unknown id: never submitted, or already waited on.
                    return Err(NetError::RequestTimeout {
                        request_id: id,
                        waited: started.elapsed(),
                    });
                }
            }
            let elapsed = started.elapsed();
            let Some(remaining) = deadline.checked_sub(elapsed) else {
                state.slots.remove(&id);
                return Err(NetError::RequestTimeout {
                    request_id: id,
                    waited: elapsed,
                });
            };
            state = wait_timeout_unpoisoned(&self.shared.cv, state, remaining);
        }
    }

    /// `submit` + `wait` under the client's request timeout.
    pub fn call(&self, request: &Request) -> Result<Response, NetError> {
        let id = self.submit(request)?;
        self.wait(id, self.config.request_timeout)
    }

    fn expect_error(resp: Response, expected: &'static str) -> NetError {
        match resp {
            Response::Error { code, message } => NetError::Remote { code, message },
            other => NetError::UnexpectedResponse {
                expected,
                got: format!("{other:?}"),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::expect_error(other, "Pong")),
        }
    }

    /// One distance query.
    pub fn query(&self, u: NodeId, v: NodeId) -> Result<Distance, NetError> {
        match self.call(&Request::Query { u, v })? {
            Response::Distance(d) => Ok(d),
            other => Err(Self::expect_error(other, "Distance")),
        }
    }

    /// A batch of distance queries, answered in request order within the
    /// batch (the batch itself completes whenever the server gets to it).
    pub fn query_batch(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<Distance>, NetError> {
        match self.call(&Request::QueryBatch(pairs.to_vec()))? {
            Response::DistanceBatch(ds) if ds.len() == pairs.len() => Ok(ds),
            Response::DistanceBatch(ds) => Err(NetError::UnexpectedResponse {
                expected: "DistanceBatch of matching length",
                got: format!("DistanceBatch of {} (sent {})", ds.len(), pairs.len()),
            }),
            other => Err(Self::expect_error(other, "DistanceBatch")),
        }
    }

    /// Fetches the hub label of one vertex as sorted `(hub, dist)` pairs.
    pub fn label(&self, v: NodeId) -> Result<Vec<(NodeId, Distance)>, NetError> {
        match self.call(&Request::Label { v })? {
            Response::Label(pairs) => Ok(pairs),
            other => Err(Self::expect_error(other, "Label")),
        }
    }

    /// Fetches the labels of many vertices, in request order.
    pub fn label_batch(&self, vs: &[NodeId]) -> Result<Vec<Vec<(NodeId, Distance)>>, NetError> {
        match self.call(&Request::LabelBatch(vs.to_vec()))? {
            Response::LabelBatch(labels) if labels.len() == vs.len() => Ok(labels),
            Response::LabelBatch(labels) => Err(NetError::UnexpectedResponse {
                expected: "LabelBatch of matching length",
                got: format!("LabelBatch of {} (sent {})", labels.len(), vs.len()),
            }),
            other => Err(Self::expect_error(other, "LabelBatch")),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn metrics(&self) -> Result<MetricsSnapshot, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(s) => Ok(s),
            other => Err(Self::expect_error(other, "Metrics")),
        }
    }

    /// Asks the daemon to mount the store at `path` (a path on the
    /// *server's* filesystem); returns the new epoch serial and node
    /// count. In-flight queries racing the swap are answered from
    /// whichever epoch they snapshot — both are complete labelings.
    pub fn reload(&self, path: &str) -> Result<(u64, u64), NetError> {
        let req = Request::Reload {
            path: path.to_string(),
        };
        match self.call(&req)? {
            Response::ReloadAck { epoch, num_nodes } => Ok((epoch, num_nodes)),
            other => Err(Self::expect_error(other, "ReloadAck")),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(Self::expect_error(other, "ShutdownAck")),
        }
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        // Yank the socket out from under the blocking reader so it
        // observes EOF and exits; then reap the thread.
        {
            let writer = lock_unpoisoned(&self.writer);
            // lint:allow(swallowed-result): the socket may already be dead, which is exactly the state shutdown wants
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// `Condvar::wait_timeout` that shrugs off poisoning like
/// [`lock_unpoisoned`] does: no thread holds this lock across code that
/// can panic, so a poisoned guard's data is still consistent.
fn wait_timeout_unpoisoned<'a>(
    cv: &Condvar,
    guard: MutexGuard<'a, MuxState>,
    dur: Duration,
) -> MutexGuard<'a, MuxState> {
    match cv.wait_timeout(guard, dur) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

/// The reader thread: drains whole frames forever, routing each to its
/// waiter by id. Exits — after marking the connection dead and waking
/// every waiter — on EOF, socket error, or a framing violation.
fn reader_loop(mut stream: TcpStream, shared: &Shared, max_frame_len: u32) {
    let reason = loop {
        let payload = match read_frame(&mut stream, max_frame_len) {
            Ok(p) => p,
            Err(e) => break format!("reading response frame: {e}"),
        };
        let (id, inner) = match split_mux(&payload) {
            Ok(split) => split,
            // The server broke v2 framing: ids are no longer
            // trustworthy, so no response on this stream is either.
            Err(e) => break format!("response frame missing request id: {e}"),
        };
        let response = match Response::decode(inner) {
            Ok(r) => r,
            Err(e) => break format!("decoding response for request {id}: {e}"),
        };
        let mut state = lock_unpoisoned(&shared.state);
        if let Some(slot) = state.slots.get_mut(&id) {
            *slot = Some(response);
        }
        // else: no waiter for this id — a timed-out request's late
        // response, or a server duplicate. Dropping it here is what
        // keeps misdelivery impossible.
        drop(state);
        shared.cv.notify_all();
    };
    let mut state = lock_unpoisoned(&shared.state);
    state.dead = Some(reason);
    drop(state);
    shared.cv.notify_all();
}
