//! The serving daemon: an event-driven readiness loop over nonblocking
//! sockets, answering HLNP frames from a shared [`QueryEngine`].
//!
//! One thread runs `poll(2)` (via the zero-dependency [`hl_sys`] shim)
//! over the listener, a self-wake pipe, and every live connection. Each
//! connection carries its own read buffer with an incremental
//! partial-frame state machine and a write queue drained as the socket
//! allows, so 10k idle-ish clients cost file descriptors, not stacks. A
//! bounded worker pool executes engine requests and completes them *out
//! of order*; protocol-v2 connections correlate completions by request
//! id, protocol-v1 connections are dispatched strictly one at a time so
//! their in-order lock-step contract survives.
//!
//! Design constraints, in order:
//!
//! - **Never panic, never hang past a timeout.** Frames are
//!   length-capped before buffering; malformed input gets a typed error
//!   frame; the loop ticks every `POLL_TICK` (50 ms) to enforce the idle,
//!   whole-frame and write-stall budgets regardless of socket state.
//! - **Bounded resources.** At most `max_connections` connections are
//!   served at once (excess is greeted and turned away
//!   [`ErrorCode::Busy`]); at most `max_inflight_per_conn` requests per
//!   v2 connection are in flight (excess gets a per-id `Busy`); reads
//!   pause when a connection's write queue backs up.
//! - **Graceful shutdown.** A `Shutdown` request (or [`StopHandle`])
//!   flips one atomic flag and nudges the loop awake. The loop stops
//!   accepting, stops reading, flushes every queued response (bounded by
//!   the write budget), then joins the worker pool before
//!   [`NetServer::serve`] returns.
//!
//! Metrics flow into the engine's existing [`hl_server::Metrics`]:
//! connections opened/rejected, request frames handled, error frames
//! sent, and per-query latency via the engine's own histogram.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hl_graph::sync::lock_unpoisoned;
use hl_server::{store, AnyStore, EngineError, QueryEngine};
use hl_sys::{poll, PollFd, POLLIN, POLLOUT};

use crate::error::NetError;
use crate::wire::{
    encode_mux, ClientHello, ErrorCode, Request, Response, ServerHello, WireError,
    DEFAULT_MAX_FRAME_LEN, MAX_PROTOCOL_VERSION, PROTOCOL_V2,
};

/// The readiness loop's maximum sleep: deadline sweeps (idle, frame and
/// write-stall budgets) run at least this often even with no socket
/// activity at all.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Parsed-but-undispatched request frames a connection may hold before
/// the loop stops reading from it (v1 pipelining backpressure).
const MAX_PENDING_FRAMES: usize = 1024;

/// Queued-but-unwritten response bytes a connection may hold before the
/// loop stops reading from it, so a client that floods requests without
/// draining responses backs up its own TCP window instead of our heap.
const MAX_QUEUED_WRITE_BYTES: usize = 8 << 20;

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further clients are
    /// greeted with [`ErrorCode::Busy`] and closed.
    pub max_connections: usize,
    /// Idle limit: a connection with no bytes arriving, no queued work
    /// and no queued responses for this long is dropped.
    pub read_timeout: Duration,
    /// Stall limit for draining queued responses: a client accepting no
    /// bytes for this long while responses wait is dropped (slow-client
    /// protection).
    pub write_timeout: Duration,
    /// Budget for one whole request frame once its first byte arrives.
    /// `read_timeout` only bounds the *idle* gap before a frame starts;
    /// without a whole-frame budget a slow-loris client dribbling one
    /// byte per `read_timeout - ε` would hold a connection slot forever.
    pub frame_timeout: Duration,
    /// Per-frame payload cap; larger frames are rejected unread.
    pub max_frame_len: u32,
    /// Whether a `Shutdown` request frame stops the daemon. The opcode
    /// is one byte and the protocol is unauthenticated, so any client —
    /// or any corrupted frame that happens to decode as `Shutdown` —
    /// can take the server down when this is on. Keep it on only for
    /// servers whose clients are trusted (benches, tests, localhost
    /// tooling); when off, the request gets [`ErrorCode::Unsupported`]
    /// and the connection keeps serving.
    pub allow_remote_shutdown: bool,
    /// Whether a `Reload` request frame may swap the served store for one
    /// read from a server-local path. Same trust calculus as
    /// [`ServerConfig::allow_remote_shutdown`]: the protocol is
    /// unauthenticated, and a reload both reads an attacker-chosen path
    /// and replaces every answer the daemon gives, so keep it on only for
    /// trusted-client deployments. When off, the request gets
    /// [`ErrorCode::Unsupported`] and the connection keeps serving.
    pub allow_remote_reload: bool,
    /// Store format version advertised in the hello (the version of the
    /// file the engine was loaded from). Updated live when a `Reload`
    /// mounts a store of a different version.
    pub store_version: u16,
    /// Threads in the request-execution pool. Requests from *all*
    /// connections share these; a slow request occupies one worker, not
    /// a connection slot.
    pub worker_threads: usize,
    /// Concurrent in-flight requests one protocol-v2 connection may
    /// hold; requests beyond the cap are answered immediately with a
    /// per-id [`ErrorCode::Busy`] so the client can back off. (Protocol
    /// v1 is lock-step: always exactly one in flight.)
    pub max_inflight_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            allow_remote_shutdown: true,
            allow_remote_reload: true,
            store_version: store::VERSION,
            worker_threads: 4,
            max_inflight_per_conn: 1024,
        }
    }
}

/// Shared state between the event loop, workers, and stop handles.
struct Inner {
    engine: Arc<QueryEngine>,
    config: ServerConfig,
    stop: AtomicBool,
    local_addr: SocketAddr,
    /// Format version of the store currently mounted, reflected in every
    /// hello. Starts at [`ServerConfig::store_version`] and tracks
    /// successful reloads.
    store_version: AtomicU16,
}

impl Inner {
    /// Flips the stop flag (once) and nudges the event loop awake with a
    /// throwaway connection to ourselves (the listener turning readable
    /// wakes the poll).
    fn trigger_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        }
    }
}

/// Cloneable remote control for a running [`NetServer`].
#[derive(Clone)]
pub struct StopHandle {
    inner: Arc<Inner>,
}

impl StopHandle {
    /// Asks the daemon to drain and exit; returns immediately.
    pub fn stop(&self) {
        self.inner.trigger_stop();
    }

    /// `true` once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }
}

/// One request handed to the worker pool.
struct Job {
    conn: u64,
    id: u64,
    version: u16,
    request: Request,
}

/// One finished request on its way back to the event loop.
struct Completion {
    conn: u64,
    /// Fully framed bytes (length prefix included, id prefix for v2).
    frame: Vec<u8>,
    is_error: bool,
}

/// Connection lifecycle, as the frame dispatcher sees it.
enum ConnState {
    /// Hello queued; the next frame must be the client's hello.
    Handshake,
    /// Handshake done; frames are requests under this protocol version.
    Serving(u16),
    /// Over the connection cap: greeted and turned away, never read.
    Rejecting,
}

/// Everything the loop tracks per connection.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Inbound bytes not yet parsed into frames.
    rbuf: Vec<u8>,
    /// Outbound frames (fully framed bytes), oldest first.
    wqueue: VecDeque<Vec<u8>>,
    /// Progress into `wqueue.front()`.
    wfront_at: usize,
    /// Total bytes across `wqueue` (backpressure accounting).
    wbytes: usize,
    /// Parsed requests not yet dispatched, with their v2 ids (0 for v1).
    pending: VecDeque<(u64, Request)>,
    /// Requests handed to the worker pool and not yet completed.
    inflight: usize,
    /// When the last byte arrived (or the connection was accepted).
    last_read: Instant,
    /// When the current partial frame's first byte arrived, if one is
    /// mid-flight — the whole-frame (slow-loris) budget anchors here.
    frame_started: Option<Instant>,
    /// Since when the write queue has been non-empty without the socket
    /// accepting a single byte.
    write_stalled: Option<Instant>,
    /// Flush what is queued, then close; stop reading immediately.
    close_after_flush: bool,
    /// The peer half-closed (or broke framing): read no further.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, state: ConnState) -> Self {
        Conn {
            stream,
            state,
            rbuf: Vec::new(),
            wqueue: VecDeque::new(),
            wfront_at: 0,
            wbytes: 0,
            pending: VecDeque::new(),
            inflight: 0,
            last_read: Instant::now(),
            frame_started: None,
            write_stalled: None,
            close_after_flush: false,
            read_closed: false,
        }
    }

    /// Whether the poll set should watch this connection for input.
    fn wants_read(&self) -> bool {
        !self.read_closed
            && !self.close_after_flush
            && self.pending.len() < MAX_PENDING_FRAMES
            && self.wbytes < MAX_QUEUED_WRITE_BYTES
    }

    /// Queues fully framed bytes for writing.
    fn queue_frame(&mut self, frame: Vec<u8>) {
        self.wbytes += frame.len();
        self.wqueue.push_back(frame);
    }

    /// `true` once nothing more can ever happen on this connection.
    fn is_finished(&self) -> bool {
        let flushed = self.wqueue.is_empty();
        (self.close_after_flush && flushed)
            || (self.read_closed && flushed && self.inflight == 0 && self.pending.is_empty())
    }
}

/// What handling readiness on a connection concluded.
#[derive(PartialEq, Eq)]
enum Verdict {
    Keep,
    /// Remove the connection now (socket dead or work complete).
    Close,
}

/// A bound-but-not-yet-serving HLNP daemon.
pub struct NetServer {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl NetServer {
    /// Binds a listener (use port 0 for an ephemeral port) over `engine`.
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<QueryEngine>,
        addr: A,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let store_version = AtomicU16::new(config.store_version);
        let inner = Arc::new(Inner {
            engine,
            config,
            stop: AtomicBool::new(false),
            local_addr,
            store_version,
        });
        Ok(NetServer { listener, inner })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// A handle that can stop the daemon from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the readiness loop on the calling thread until a `Shutdown`
    /// request or [`StopHandle::stop`] arrives, then drains: stops
    /// accepting and reading, flushes queued responses (bounded by the
    /// write budget), and joins the worker pool.
    pub fn serve(self) -> Result<(), NetError> {
        self.listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker_tx = Arc::new(waker_tx);

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        for i in 0..self.inner.config.worker_threads.max(1) {
            let inner = Arc::clone(&self.inner);
            let job_rx = Arc::clone(&job_rx);
            let done_tx = done_tx.clone();
            let waker = Arc::clone(&waker_tx);
            let handle = std::thread::Builder::new()
                .name(format!("hlnet-worker-{i}"))
                .spawn(move || worker_loop(&inner, &job_rx, &done_tx, &waker))?;
            workers.push(handle);
        }
        drop(done_tx); // the loop's receiver sees EOF once workers exit

        let result = self.event_loop(&waker_rx, &job_tx, &done_rx);

        // Teardown: closing the job channel sends every worker home once
        // the queue drains; in-flight completions go to a dead receiver.
        drop(job_tx);
        for handle in workers {
            let _ = handle.join();
        }
        result
    }

    fn event_loop(
        &self,
        waker_rx: &UnixStream,
        job_tx: &Sender<Job>,
        done_rx: &Receiver<Completion>,
    ) -> Result<(), NetError> {
        let inner = &self.inner;
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn_id: u64 = 0;
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();

        loop {
            if inner.stop.load(Ordering::SeqCst) && !draining {
                draining = true;
                drain_deadline = Instant::now() + inner.config.write_timeout;
                for c in conns.values_mut() {
                    // Half-close semantics: in-flight work finishes and
                    // queued responses flush, but nothing new is read.
                    c.read_closed = true;
                    c.close_after_flush = true;
                }
            }
            if draining {
                conns.retain(|_, c| !(c.wqueue.is_empty() && c.inflight == 0));
                if conns.is_empty() || Instant::now() >= drain_deadline {
                    return Ok(());
                }
            }

            pollfds.clear();
            tokens.clear();
            if !draining {
                pollfds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                tokens.push(Token::Listener);
            }
            pollfds.push(PollFd::new(waker_rx.as_raw_fd(), POLLIN));
            tokens.push(Token::Waker);
            for (&cid, c) in conns.iter() {
                let mut events = 0i16;
                if c.wants_read() {
                    events |= POLLIN;
                }
                if !c.wqueue.is_empty() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    pollfds.push(PollFd::new(c.stream.as_raw_fd(), events));
                    tokens.push(Token::Conn(cid));
                }
            }
            poll(&mut pollfds, Some(POLL_TICK))?;

            for (fd, token) in pollfds.iter().zip(tokens.iter()) {
                match *token {
                    Token::Listener => {
                        if fd.readable() {
                            self.accept_ready(&mut conns, &mut next_conn_id, job_tx)?;
                        }
                    }
                    Token::Waker => {
                        if fd.readable() {
                            drain_waker(waker_rx);
                        }
                    }
                    Token::Conn(cid) => {
                        if fd.invalid() {
                            conns.remove(&cid);
                            continue;
                        }
                        let Some(c) = conns.get_mut(&cid) else {
                            continue;
                        };
                        let mut verdict = Verdict::Keep;
                        if fd.readable() && verdict == Verdict::Keep {
                            verdict = conn_readable(inner, c, cid, job_tx);
                        }
                        if verdict == Verdict::Keep {
                            verdict = conn_write(c);
                        }
                        if verdict == Verdict::Close {
                            conns.remove(&cid);
                        }
                    }
                }
            }

            // Completions from the worker pool: queue the frame, free the
            // in-flight slot, dispatch whatever that unblocked.
            while let Ok(done) = done_rx.try_recv() {
                let Some(c) = conns.get_mut(&done.conn) else {
                    continue; // connection died while the job ran
                };
                if done.is_error {
                    inner
                        .engine
                        .metrics()
                        .net_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                c.inflight = c.inflight.saturating_sub(1);
                c.queue_frame(done.frame);
                pump(inner, c, done.conn, job_tx);
                if conn_write(c) == Verdict::Close {
                    conns.remove(&done.conn);
                }
            }

            // Deadline sweep: every budget is enforced from the tick, so
            // a peer the kernel never reports on still cannot overstay.
            let now = Instant::now();
            conns.retain(|_, c| {
                if c.is_finished() {
                    return false;
                }
                if let Some(t0) = c.frame_started {
                    if now.duration_since(t0) > inner.config.frame_timeout {
                        return false; // slow-loris: silent close, like v1
                    }
                }
                if let Some(t0) = c.write_stalled {
                    if now.duration_since(t0) > inner.config.write_timeout {
                        return false; // peer not draining responses
                    }
                }
                let idle = c.inflight == 0
                    && c.pending.is_empty()
                    && c.wqueue.is_empty()
                    && c.frame_started.is_none();
                if idle && now.duration_since(c.last_read) > inner.config.read_timeout {
                    return false; // silent idle drop, like v1
                }
                true
            });
        }
    }

    /// Accepts every connection the kernel has queued, greeting each and
    /// turning away those over the cap.
    fn accept_ready(
        &self,
        conns: &mut HashMap<u64, Conn>,
        next_conn_id: &mut u64,
        job_tx: &Sender<Job>,
    ) -> Result<(), NetError> {
        let inner = &self.inner;
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A queued client that resets before we accept surfaces
                // here as ConnectionAborted (or Reset on some platforms).
                // That is the *client's* failure: one hostile or crashed
                // peer must not take down the accept loop for everyone.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    if inner.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    // File-descriptor exhaustion (EMFILE/ENFILE) is load,
                    // not a broken listener: stop accepting this tick so
                    // the fds already serving connections can drain.
                    if matches!(e.raw_os_error(), Some(23) | Some(24)) {
                        return Ok(());
                    }
                    return Err(NetError::Io(e));
                }
            };
            if inner.stop.load(Ordering::SeqCst) {
                continue; // likely the shutdown nudge; drop it
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue; // socket already dead
            }
            let metrics = inner.engine.metrics();
            let serving = conns
                .values()
                .filter(|c| !matches!(c.state, ConnState::Rejecting))
                .count();
            let cid = *next_conn_id;
            *next_conn_id += 1;
            let mut c = if serving >= inner.config.max_connections {
                metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                metrics.net_errors.fetch_add(1, Ordering::Relaxed);
                let mut c = Conn::new(stream, ConnState::Rejecting);
                c.queue_frame(frame_payload(&server_hello(inner).encode()));
                let busy = Response::Error {
                    code: ErrorCode::Busy,
                    message: format!(
                        "server at its {}-connection cap; retry with backoff",
                        inner.config.max_connections
                    ),
                };
                c.queue_frame(frame_payload(&busy.encode()));
                c.read_closed = true;
                c.close_after_flush = true;
                c
            } else {
                metrics.connections_opened.fetch_add(1, Ordering::Relaxed);
                let mut c = Conn::new(stream, ConnState::Handshake);
                c.queue_frame(frame_payload(&server_hello(inner).encode()));
                c
            };
            // The greeting usually fits the socket buffer whole; write it
            // now so a ready client can answer within this same tick.
            if conn_write(&mut c) == Verdict::Keep {
                conns.insert(cid, c);
            }
            // Unused only when every accepted client is over cap.
            let _ = job_tx;
        }
    }
}

/// The poll-set entry kinds, parallel to the `PollFd` vector.
#[derive(Clone, Copy)]
enum Token {
    Listener,
    Waker,
    Conn(u64),
}

/// Empties the self-wake pipe so the next poll blocks again.
fn drain_waker(waker_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match (&*waker_rx).read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock: drained
        }
    }
}

fn server_hello(inner: &Inner) -> ServerHello {
    ServerHello {
        protocol_version: MAX_PROTOCOL_VERSION,
        store_version: inner.store_version.load(Ordering::SeqCst),
        num_nodes: inner.engine.num_nodes() as u64,
    }
}

/// Wraps a payload with its length prefix into one writable buffer.
fn frame_payload(payload: &[u8]) -> Vec<u8> {
    // Saturate rather than truncate, mirroring the wire encoders; a
    // response this large cannot be produced by any capped request.
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Queues `resp` on `c` under `version` framing, counting error frames.
fn queue_response(inner: &Inner, c: &mut Conn, version: u16, id: u64, resp: &Response) {
    if matches!(resp, Response::Error { .. }) {
        inner
            .engine
            .metrics()
            .net_errors
            .fetch_add(1, Ordering::Relaxed);
    }
    let payload = resp.encode();
    let framed = if version >= PROTOCOL_V2 {
        frame_payload(&encode_mux(id, &payload))
    } else {
        frame_payload(&payload)
    };
    c.queue_frame(framed);
}

/// Reads everything the socket has, parses complete frames, dispatches.
fn conn_readable(inner: &Inner, c: &mut Conn, cid: u64, job_tx: &Sender<Job>) -> Verdict {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if !c.wants_read() {
            break;
        }
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.read_closed = true;
                break;
            }
            Ok(n) => {
                c.rbuf.extend_from_slice(&buf[..n]);
                c.last_read = Instant::now();
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close, // reset: silent close, like v1
        }
    }
    parse_frames(inner, c);
    pump(inner, c, cid, job_tx);
    if c.is_finished() {
        return Verdict::Close;
    }
    Verdict::Keep
}

/// Splits `c.rbuf` into complete frames and routes each through the
/// connection's state machine. Framing violations (oversized or empty
/// frames) get a typed error and end the connection once it flushes;
/// per-frame decode errors answer typed and keep serving.
fn parse_frames(inner: &Inner, c: &mut Conn) {
    let mut at = 0usize;
    loop {
        let avail = c.rbuf.len().saturating_sub(at);
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes([c.rbuf[at], c.rbuf[at + 1], c.rbuf[at + 2], c.rbuf[at + 3]]);
        if len == 0 {
            let resp = Response::Error {
                code: ErrorCode::Malformed,
                message: WireError::EmptyFrame.to_string(),
            };
            queue_response(inner, c, framing_version(c), 0, &resp);
            c.read_closed = true;
            c.close_after_flush = true;
            c.rbuf.clear();
            c.frame_started = None;
            return;
        }
        if len > inner.config.max_frame_len {
            let resp = Response::Error {
                code: ErrorCode::FrameTooLarge,
                message: format!(
                    "frame of {len} bytes exceeds cap of {}",
                    inner.config.max_frame_len
                ),
            };
            queue_response(inner, c, framing_version(c), 0, &resp);
            c.read_closed = true;
            c.close_after_flush = true;
            c.rbuf.clear();
            c.frame_started = None;
            return;
        }
        if avail < 4 + len as usize {
            break;
        }
        let payload = c.rbuf[at + 4..at + 4 + len as usize].to_vec();
        at += 4 + len as usize;
        accept_frame(inner, c, &payload);
        if c.read_closed {
            // A handshake failure mid-buffer: discard the rest.
            c.rbuf.clear();
            c.frame_started = None;
            return;
        }
    }
    if at > 0 {
        c.rbuf.drain(..at);
    }
    c.frame_started = if c.rbuf.is_empty() {
        None
    } else {
        c.frame_started.or_else(|| Some(Instant::now()))
    };
}

/// The framing to answer under *before* dispatch is possible (handshake
/// errors answer in v1 framing — the peer has not negotiated anything).
fn framing_version(c: &Conn) -> u16 {
    match c.state {
        ConnState::Serving(v) => v,
        _ => 1,
    }
}

/// Routes one complete frame payload through the connection state.
fn accept_frame(inner: &Inner, c: &mut Conn, payload: &[u8]) {
    match c.state {
        ConnState::Rejecting => {} // never read, never dispatched
        ConnState::Handshake => match ClientHello::decode(payload) {
            Ok(hello) if (1..=MAX_PROTOCOL_VERSION).contains(&hello.protocol_version) => {
                c.state = ConnState::Serving(hello.protocol_version);
            }
            Ok(hello) => {
                let resp = Response::Error {
                    code: ErrorCode::VersionMismatch,
                    message: format!(
                        "server speaks protocol versions 1..={MAX_PROTOCOL_VERSION}, \
                         client spoke {}",
                        hello.protocol_version
                    ),
                };
                queue_response(inner, c, 1, 0, &resp);
                c.read_closed = true;
                c.close_after_flush = true;
            }
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("expected client hello: {e}"),
                };
                queue_response(inner, c, 1, 0, &resp);
                c.read_closed = true;
                c.close_after_flush = true;
            }
        },
        ConnState::Serving(version) => {
            inner
                .engine
                .metrics()
                .net_requests
                .fetch_add(1, Ordering::Relaxed);
            let (id, inner_payload) = if version >= PROTOCOL_V2 {
                match crate::wire::split_mux(payload) {
                    Ok(split) => split,
                    Err(e) => {
                        // Echo the id when the payload carried one; a
                        // payload too short even for that answers id 0.
                        let id = payload
                            .get(..8)
                            .map(|b| {
                                u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
                            })
                            .unwrap_or(0);
                        let resp = Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        };
                        queue_response(inner, c, version, id, &resp);
                        return;
                    }
                }
            } else {
                (0u64, payload)
            };
            match Request::decode(inner_payload) {
                Ok(request) => c.pending.push_back((id, request)),
                Err(e) => {
                    // The frame boundary is intact, so the connection
                    // can keep serving after reporting the bad frame.
                    let resp = Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    };
                    queue_response(inner, c, version, id, &resp);
                }
            }
        }
    }
}

/// Dispatches as many pending requests as the protocol allows: v1 is
/// strictly one at a time (lock-step order), v2 up to the in-flight cap
/// with overflow answered `Busy` per id.
fn pump(inner: &Inner, c: &mut Conn, cid: u64, job_tx: &Sender<Job>) {
    let ConnState::Serving(version) = c.state else {
        return;
    };
    while let Some(&(id, _)) = c.pending.front() {
        if version < PROTOCOL_V2 && c.inflight > 0 {
            break; // lock-step: the previous request must answer first
        }
        let Some((_, request)) = c.pending.pop_front() else {
            break;
        };
        match request {
            Request::Ping => queue_response(inner, c, version, id, &Response::Pong),
            Request::Metrics => {
                let snap = Response::Metrics(inner.engine.snapshot());
                queue_response(inner, c, version, id, &snap);
            }
            Request::Shutdown if inner.config.allow_remote_shutdown => {
                queue_response(inner, c, version, id, &Response::ShutdownAck);
                inner.trigger_stop();
            }
            Request::Shutdown => {
                let resp = Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "remote shutdown is disabled on this server".to_string(),
                };
                queue_response(inner, c, version, id, &resp);
            }
            Request::Reload { .. } if !inner.config.allow_remote_reload => {
                let resp = Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "remote reload is disabled on this server".to_string(),
                };
                queue_response(inner, c, version, id, &resp);
            }
            heavy => {
                // Engine-bound work goes to the pool. v2 connections may
                // stack these to the cap; overflow answers Busy so the
                // pool's queue stays bounded per connection.
                if version >= PROTOCOL_V2 && c.inflight >= inner.config.max_inflight_per_conn {
                    let resp = Response::Error {
                        code: ErrorCode::Busy,
                        message: format!(
                            "connection at its {}-request in-flight cap; retry with backoff",
                            inner.config.max_inflight_per_conn
                        ),
                    };
                    queue_response(inner, c, version, id, &resp);
                    continue;
                }
                c.inflight += 1;
                let job = Job {
                    conn: cid,
                    id,
                    version,
                    request: heavy,
                };
                if job_tx.send(job).is_err() {
                    // The pool is gone (teardown): answer typed rather
                    // than leaving the id unanswered forever.
                    c.inflight = c.inflight.saturating_sub(1);
                    let resp = Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".to_string(),
                    };
                    queue_response(inner, c, version, id, &resp);
                }
            }
        }
    }
}

/// Drains the write queue as far as the socket allows.
fn conn_write(c: &mut Conn) -> Verdict {
    while let Some(front) = c.wqueue.front() {
        match c.stream.write(&front[c.wfront_at..]) {
            Ok(0) => return Verdict::Close, // peer stopped accepting bytes
            Ok(n) => {
                c.wfront_at += n;
                c.wbytes = c.wbytes.saturating_sub(n);
                c.write_stalled = None;
                if c.wfront_at >= front.len() {
                    c.wqueue.pop_front();
                    c.wfront_at = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if c.write_stalled.is_none() {
                    c.write_stalled = Some(Instant::now());
                }
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close, // reset mid-response
        }
    }
    if c.wqueue.is_empty() {
        c.write_stalled = None;
    }
    if c.is_finished() {
        Verdict::Close
    } else {
        Verdict::Keep
    }
}

/// One worker: executes engine-bound requests and posts framed
/// completions back to the loop, waking it through the pipe.
fn worker_loop(
    inner: &Inner,
    job_rx: &Mutex<Receiver<Job>>,
    done_tx: &Sender<Completion>,
    waker: &UnixStream,
) {
    loop {
        // Holding the lock across `recv` parks exactly one idle worker on
        // the channel; the rest queue on the mutex. Hand-off is fair
        // enough for a pool this small and keeps the channel single-consumer.
        let job = { lock_unpoisoned(job_rx).recv() };
        let Ok(job) = job else {
            return; // channel closed: the server is done
        };
        let response = execute(inner, job.request);
        let is_error = matches!(response, Response::Error { .. });
        let payload = response.encode();
        let frame = if job.version >= PROTOCOL_V2 {
            frame_payload(&encode_mux(job.id, &payload))
        } else {
            frame_payload(&payload)
        };
        let completion = Completion {
            conn: job.conn,
            frame,
            is_error,
        };
        if done_tx.send(completion).is_err() {
            return; // loop is gone: nothing left to complete into
        }
        // lint:allow(swallowed-result): a full wake pipe already guarantees a pending wake; any other failure means teardown
        let _ = (&*waker).write(&[1]);
    }
}

/// Executes one engine-bound request (the `pump` fast paths — ping,
/// metrics, shutdown, gating — never reach here).
fn execute(inner: &Inner, request: Request) -> Response {
    match request {
        Request::Query { u, v } => match inner.engine.query(u, v) {
            Ok(d) => Response::Distance(d),
            Err(e) => engine_error_response(&e),
        },
        Request::QueryBatch(pairs) => match inner.engine.query_batch(&pairs) {
            Ok(ds) => Response::DistanceBatch(ds),
            Err(e) => engine_error_response(&e),
        },
        Request::Label { v } => match inner.engine.label_of(v) {
            Ok((hubs, dists)) => Response::Label(hubs.into_iter().zip(dists).collect()),
            Err(e) => engine_error_response(&e),
        },
        Request::LabelBatch(vs) => match label_batch(inner, &vs) {
            Ok(labels) => Response::LabelBatch(labels),
            Err(e) => engine_error_response(&e),
        },
        Request::Reload { path } => handle_reload(inner, &path),
        // Already answered inline by `pump`; kept total for safety.
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics(inner.engine.snapshot()),
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Mounts the store at `path` into the engine. The new store is opened
/// and fully validated *before* the swap, so a missing or corrupt file
/// reports an error and leaves the current epoch serving untouched.
fn handle_reload(inner: &Inner, path: &str) -> Response {
    let store = match AnyStore::open(path) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Internal,
                message: format!("reload of {path:?} failed: {e}"),
            }
        }
    };
    let version = store.version();
    let labeling = match store.into_served() {
        Ok(f) => f,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Internal,
                message: format!("reload of {path:?} failed to decode: {e}"),
            }
        }
    };
    let num_nodes = labeling.num_nodes() as u64;
    let epoch = inner.engine.reload(labeling);
    inner.store_version.store(version, Ordering::SeqCst);
    Response::ReloadAck { epoch, num_nodes }
}

/// Fetches the label of every requested vertex; fails atomically on the
/// first out-of-range vertex so a partial batch is never returned.
fn label_batch(
    inner: &Inner,
    vs: &[u32],
) -> Result<Vec<Vec<(u32, hl_graph::Distance)>>, EngineError> {
    vs.iter()
        .map(|&v| {
            inner
                .engine
                .label_of(v)
                .map(|(hubs, dists)| hubs.into_iter().zip(dists).collect())
        })
        .collect()
}

fn engine_error_response(e: &EngineError) -> Response {
    let code = match e {
        EngineError::NodeOutOfRange { .. } => ErrorCode::NodeOutOfRange,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
