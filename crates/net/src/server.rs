//! The serving daemon: a bounded accept loop over per-connection worker
//! threads, answering HLNP frames from a shared [`QueryEngine`].
//!
//! Design constraints, in order:
//!
//! - **Never panic, never hang past a timeout.** Every socket carries
//!   read/write timeouts; every frame is length-capped before buffering;
//!   every malformed input is answered with a typed error frame.
//! - **Bounded resources.** At most `max_connections` handler threads
//!   exist at once; a connection over the cap is greeted and turned away
//!   with [`ErrorCode::Busy`] so the client can back off and retry.
//! - **Graceful shutdown.** A `Shutdown` request (or [`StopHandle`])
//!   flips one atomic flag and nudges the accept loop awake. The loop
//!   stops accepting, half-closes the read side of every live connection
//!   (in-flight responses still flush), and joins every handler before
//!   [`NetServer::serve`] returns.
//!
//! Metrics flow into the engine's existing [`hl_server::Metrics`]:
//! connections opened/rejected, request frames handled, error frames
//! sent, and per-query latency via the engine's own histogram.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hl_graph::sync::lock_unpoisoned;
use hl_server::{store, AnyStore, EngineError, QueryEngine};

use crate::error::NetError;
use crate::wire::{
    read_frame_deadline, write_frame_deadline, ClientHello, ErrorCode, Request, Response,
    ServerHello, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further clients are
    /// greeted with [`ErrorCode::Busy`] and closed.
    pub max_connections: usize,
    /// Idle limit per read: a client silent this long is dropped.
    pub read_timeout: Duration,
    /// Stall limit for writing one whole response frame: a client not
    /// draining responses within this budget is dropped (slow-client
    /// protection).
    pub write_timeout: Duration,
    /// Budget for one whole request frame once its first byte arrives.
    /// `read_timeout` only bounds the *idle* gap before a frame starts;
    /// without a whole-frame budget a slow-loris client dribbling one
    /// byte per `read_timeout - ε` would hold a connection slot forever.
    pub frame_timeout: Duration,
    /// Per-frame payload cap; larger frames are rejected unread.
    pub max_frame_len: u32,
    /// Whether a `Shutdown` request frame stops the daemon. The opcode
    /// is one byte and the protocol is unauthenticated, so any client —
    /// or any corrupted frame that happens to decode as `Shutdown` —
    /// can take the server down when this is on. Keep it on only for
    /// servers whose clients are trusted (benches, tests, localhost
    /// tooling); when off, the request gets [`ErrorCode::Unsupported`]
    /// and the connection keeps serving.
    pub allow_remote_shutdown: bool,
    /// Whether a `Reload` request frame may swap the served store for one
    /// read from a server-local path. Same trust calculus as
    /// [`ServerConfig::allow_remote_shutdown`]: the protocol is
    /// unauthenticated, and a reload both reads an attacker-chosen path
    /// and replaces every answer the daemon gives, so keep it on only for
    /// trusted-client deployments. When off, the request gets
    /// [`ErrorCode::Unsupported`] and the connection keeps serving.
    pub allow_remote_reload: bool,
    /// Store format version advertised in the hello (the version of the
    /// file the engine was loaded from). Updated live when a `Reload`
    /// mounts a store of a different version.
    pub store_version: u16,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            allow_remote_shutdown: true,
            allow_remote_reload: true,
            store_version: store::VERSION,
        }
    }
}

/// Live connections, indexed by id, so shutdown can half-close them.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            lock_unpoisoned(&self.streams).insert(id, clone);
        }
    }

    fn deregister(&self, id: u64) {
        lock_unpoisoned(&self.streams).remove(&id);
    }

    /// Half-closes the read side of every live connection: blocked reads
    /// wake with EOF while responses still in flight can finish writing.
    fn shutdown_reads(&self) {
        for stream in lock_unpoisoned(&self.streams).values() {
            // lint:allow(swallowed-result): std TcpStream::shutdown (not the client's); an already-dead socket is fine here
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// Deregisters a connection even when its handler errors out early.
struct Registration {
    conns: Arc<ConnRegistry>,
    id: u64,
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.conns.deregister(self.id);
    }
}

/// Shared state between the accept loop, handlers, and stop handles.
struct Inner {
    engine: Arc<QueryEngine>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnRegistry>,
    local_addr: SocketAddr,
    /// Format version of the store currently mounted, reflected in every
    /// hello. Starts at [`ServerConfig::store_version`] and tracks
    /// successful reloads.
    store_version: AtomicU16,
}

impl Inner {
    /// Flips the stop flag (once) and nudges the accept loop awake with a
    /// throwaway connection to ourselves.
    fn trigger_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        }
    }
}

/// Cloneable remote control for a running [`NetServer`].
#[derive(Clone)]
pub struct StopHandle {
    inner: Arc<Inner>,
}

impl StopHandle {
    /// Asks the daemon to drain and exit; returns immediately.
    pub fn stop(&self) {
        self.inner.trigger_stop();
    }

    /// `true` once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-serving HLNP daemon.
pub struct NetServer {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl NetServer {
    /// Binds a listener (use port 0 for an ephemeral port) over `engine`.
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<QueryEngine>,
        addr: A,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let store_version = AtomicU16::new(config.store_version);
        let inner = Arc::new(Inner {
            engine,
            config,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(ConnRegistry::default()),
            local_addr,
            store_version,
        });
        Ok(NetServer { listener, inner })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// A handle that can stop the daemon from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the accept loop on the calling thread until a `Shutdown`
    /// request or [`StopHandle::stop`] arrives, then drains: stops
    /// accepting, half-closes live connections, joins every handler.
    pub fn serve(self) -> Result<(), NetError> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let conn_ids = AtomicU64::new(0);
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // A queued client that resets before we accept surfaces
                // here as ConnectionAborted (or Reset on some platforms).
                // That is the *client's* failure: one hostile or crashed
                // peer must not take down the accept loop for everyone.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    if self.inner.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // File-descriptor exhaustion (EMFILE/ENFILE) is load,
                    // not a broken listener: shed it by pausing, so the
                    // fds already serving connections can drain.
                    if matches!(e.raw_os_error(), Some(23) | Some(24)) {
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                    return Err(NetError::Io(e));
                }
            };
            if self.inner.stop.load(Ordering::SeqCst) {
                break; // the stream may be the shutdown nudge; drop it
            }
            handlers.retain(|h| !h.is_finished());
            let metrics = self.inner.engine.metrics();
            if handlers.len() >= self.inner.config.max_connections {
                metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                metrics.net_errors.fetch_add(1, Ordering::Relaxed);
                reject_over_cap(stream, &self.inner);
                continue;
            }
            let id = conn_ids.fetch_add(1, Ordering::Relaxed);
            let inner = Arc::clone(&self.inner);
            let spawned = std::thread::Builder::new()
                .name(format!("hlnet-conn-{id}"))
                .spawn(move || {
                    // lint:allow(swallowed-result): per-peer I/O errors must not kill the daemon; metrics count them
                    let _ = handle_connection(&inner, stream, id);
                });
            match spawned {
                Ok(handle) => {
                    metrics.connections_opened.fetch_add(1, Ordering::Relaxed);
                    handlers.push(handle);
                }
                Err(_) => {
                    // Thread exhaustion. The stream died with the closure,
                    // so no greeting is possible — just account for it.
                    metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.inner.conns.shutdown_reads();
        for handle in handlers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Greets an over-cap client with hello + `Busy` so it can back off,
/// then closes. Short write timeout: a client that cannot even absorb
/// two tiny frames is not worth blocking the accept loop for.
fn reject_over_cap(stream: TcpStream, inner: &Inner) {
    let mut stream = stream;
    let budget = Duration::from_secs(1);
    // lint:allow(swallowed-result): best-effort courtesy hello to a peer we are about to drop
    let _ = write_frame_deadline(&mut stream, &server_hello(inner).encode(), budget);
    let busy = Response::Error {
        code: ErrorCode::Busy,
        message: format!(
            "server at its {}-connection cap; retry with backoff",
            inner.config.max_connections
        ),
    };
    // lint:allow(swallowed-result): best-effort busy notice; the connection is over-cap either way
    let _ = write_frame_deadline(&mut stream, &busy.encode(), budget);
}

fn server_hello(inner: &Inner) -> ServerHello {
    ServerHello {
        protocol_version: PROTOCOL_VERSION,
        store_version: inner.store_version.load(Ordering::SeqCst),
        num_nodes: inner.engine.num_nodes() as u64,
    }
}

/// Writes a response frame, counting error frames into the metrics.
fn send(stream: &mut TcpStream, inner: &Inner, resp: &Response) -> Result<(), NetError> {
    if matches!(resp, Response::Error { .. }) {
        inner
            .engine
            .metrics()
            .net_errors
            .fetch_add(1, Ordering::Relaxed);
    }
    write_frame_deadline(stream, &resp.encode(), inner.config.write_timeout)?;
    Ok(())
}

/// Serves one connection to completion. Socket-level failures end the
/// connection silently (the peer is gone); protocol violations are
/// answered with a typed error frame first.
fn handle_connection(inner: &Inner, mut stream: TcpStream, id: u64) -> Result<(), NetError> {
    let _ = stream.set_nodelay(true);
    inner.conns.register(id, &stream);
    let _guard = Registration {
        conns: Arc::clone(&inner.conns),
        id,
    };

    write_frame_deadline(
        &mut stream,
        &server_hello(inner).encode(),
        inner.config.write_timeout,
    )?;

    // Handshake: the client must identify itself before anything else.
    let payload = match read_request_frame(&mut stream, inner) {
        Ok(p) => p,
        Err(e) => return close_on_read_error(&mut stream, inner, e),
    };
    match ClientHello::decode(&payload) {
        Ok(hello) if hello.protocol_version == PROTOCOL_VERSION => {}
        Ok(hello) => {
            let resp = Response::Error {
                code: ErrorCode::VersionMismatch,
                message: format!(
                    "server speaks protocol {PROTOCOL_VERSION}, client spoke {}",
                    hello.protocol_version
                ),
            };
            // lint:allow(swallowed-result): courtesy version-mismatch error before closing; the close happens regardless
            let _ = send(&mut stream, inner, &resp);
            return Ok(());
        }
        Err(e) => {
            let resp = Response::Error {
                code: ErrorCode::Malformed,
                message: format!("expected client hello: {e}"),
            };
            // lint:allow(swallowed-result): courtesy malformed-hello error before closing; the close happens regardless
            let _ = send(&mut stream, inner, &resp);
            return Ok(());
        }
    }

    loop {
        let payload = match read_request_frame(&mut stream, inner) {
            Ok(p) => p,
            Err(e) => return close_on_read_error(&mut stream, inner, e),
        };
        let metrics = inner.engine.metrics();
        metrics.net_requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary is intact, so the connection can
                // keep serving after reporting the bad frame.
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                send(&mut stream, inner, &resp)?;
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Query { u, v } => match inner.engine.query(u, v) {
                Ok(d) => Response::Distance(d),
                Err(e) => engine_error_response(&e),
            },
            Request::QueryBatch(pairs) => match inner.engine.query_batch(&pairs) {
                Ok(ds) => Response::DistanceBatch(ds),
                Err(e) => engine_error_response(&e),
            },
            Request::Metrics => Response::Metrics(inner.engine.snapshot()),
            Request::Shutdown if inner.config.allow_remote_shutdown => {
                // lint:allow(swallowed-result): the ack is best-effort; the server stops whether or not it landed
                let _ = send(&mut stream, inner, &Response::ShutdownAck);
                inner.trigger_stop();
                return Ok(());
            }
            Request::Shutdown => Response::Error {
                code: ErrorCode::Unsupported,
                message: "remote shutdown is disabled on this server".to_string(),
            },
            Request::Reload { path } if inner.config.allow_remote_reload => {
                handle_reload(inner, &path)
            }
            Request::Reload { .. } => Response::Error {
                code: ErrorCode::Unsupported,
                message: "remote reload is disabled on this server".to_string(),
            },
            Request::Label { v } => match inner.engine.label_of(v) {
                Ok((hubs, dists)) => Response::Label(hubs.into_iter().zip(dists).collect()),
                Err(e) => engine_error_response(&e),
            },
            Request::LabelBatch(vs) => match label_batch(inner, &vs) {
                Ok(labels) => Response::LabelBatch(labels),
                Err(e) => engine_error_response(&e),
            },
        };
        send(&mut stream, inner, &response)?;
    }
}

/// Mounts the store at `path` into the engine. The new store is opened
/// and fully validated *before* the swap, so a missing or corrupt file
/// reports an error and leaves the current epoch serving untouched.
fn handle_reload(inner: &Inner, path: &str) -> Response {
    let store = match AnyStore::open(path) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Internal,
                message: format!("reload of {path:?} failed: {e}"),
            }
        }
    };
    let version = store.version();
    let labeling = match store.into_flat() {
        Ok(f) => f,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Internal,
                message: format!("reload of {path:?} failed to decode: {e}"),
            }
        }
    };
    let num_nodes = labeling.num_nodes() as u64;
    let epoch = inner.engine.reload(labeling);
    inner.store_version.store(version, Ordering::SeqCst);
    Response::ReloadAck { epoch, num_nodes }
}

/// Fetches the label of every requested vertex; fails atomically on the
/// first out-of-range vertex so a partial batch is never returned.
fn label_batch(
    inner: &Inner,
    vs: &[u32],
) -> Result<Vec<Vec<(u32, hl_graph::Distance)>>, EngineError> {
    vs.iter()
        .map(|&v| {
            inner
                .engine
                .label_of(v)
                .map(|(hubs, dists)| hubs.into_iter().zip(dists).collect())
        })
        .collect()
}

/// Reads one request frame under the server's two budgets: the client
/// may idle for `read_timeout` between frames, but once a frame starts
/// it must complete within `frame_timeout`.
fn read_request_frame(stream: &mut TcpStream, inner: &Inner) -> Result<Vec<u8>, WireError> {
    read_frame_deadline(
        stream,
        inner.config.max_frame_len,
        inner.config.read_timeout,
        inner.config.frame_timeout,
    )
}

/// A failed frame read either means the peer left (close silently) or
/// broke protocol (answer with a typed error, then close — the frame
/// boundary is unrecoverable).
fn close_on_read_error(
    stream: &mut TcpStream,
    inner: &Inner,
    e: WireError,
) -> Result<(), NetError> {
    match e {
        WireError::Io(_) => Ok(()), // disconnect, idle timeout, or drain
        WireError::FrameTooLarge { len, max } => {
            let resp = Response::Error {
                code: ErrorCode::FrameTooLarge,
                message: format!("frame of {len} bytes exceeds cap of {max}"),
            };
            // lint:allow(swallowed-result): error response to a peer that sent an oversized frame; connection ends either way
            let _ = send(stream, inner, &resp);
            Ok(())
        }
        other => {
            let resp = Response::Error {
                code: ErrorCode::Malformed,
                message: other.to_string(),
            };
            // lint:allow(swallowed-result): error response to a peer that sent garbage; connection ends either way
            let _ = send(stream, inner, &resp);
            Ok(())
        }
    }
}

fn engine_error_response(e: &EngineError) -> Response {
    let code = match e {
        EngineError::NodeOutOfRange { .. } => ErrorCode::NodeOutOfRange,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
