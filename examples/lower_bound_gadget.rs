//! The lower-bound gadget of Theorem 2.1, end to end:
//!
//! 1. build `H_{2,2}` (the Figure 1 instance) and its max-degree-3
//!    expansion `G_{2,2}`;
//! 2. verify Lemma 2.2 exhaustively (unique shortest paths through
//!    midpoints);
//! 3. construct an exact hub labeling and run the triplet-counting audit
//!    that drives the `n/2^{Θ(√log n)}` lower bound.
//!
//! Run with: `cargo run --release --example lower_bound_gadget`

use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::lowerbound::accounting::audit_h;
use hub_labeling::lowerbound::midpoint::{check_all_pairs, figure1_check};
use hub_labeling::lowerbound::{GGraph, GadgetParams, HGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GadgetParams::new(2, 2)?;
    println!(
        "gadget {params}: s = {}, A = {}",
        params.side(),
        params.base_weight()
    );

    // 1. Build H and G.
    let h = HGraph::build(params);
    let g = GGraph::from_hgraph(&h);
    println!(
        "H: {} vertices, {} edges | G: {} vertices, max degree {}",
        h.graph().num_nodes(),
        h.graph().num_edges(),
        g.graph().num_nodes(),
        g.graph().max_degree()
    );
    assert_eq!(g.graph().max_degree(), 3);

    // 2. Figure 1 and Lemma 2.2.
    let (blue, red) = figure1_check(&h);
    println!(
        "Figure 1: blue path length {} (unique: {}, via midpoint: {}), red detour {}",
        blue.distance,
        blue.path_count == 1,
        blue.through_midpoint,
        red
    );
    let failures = check_all_pairs(&h);
    println!(
        "Lemma 2.2: {} even pairs checked, {} failures",
        h.even_pairs().count(),
        failures.len()
    );
    assert!(failures.is_empty());

    // 3. The counting audit on a concrete exact labeling.
    let labeling = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
    let report = audit_h(&h, &labeling);
    println!(
        "audit: {}/{} triples charged, Σ|S*| at endpoints = {} (bound: ≥ {})",
        report.charged, report.triples, report.star_total_at_endpoints, report.star_lower_bound
    );
    println!(
        "measured avg hub size {:.2} vs closed-form lower bound {:.3}",
        labeling.average_hubs(),
        params.h_avg_hub_lower_bound()
    );
    assert!(report.all_charged());
    assert!(labeling.average_hubs() >= params.h_avg_hub_lower_bound());
    Ok(())
}
