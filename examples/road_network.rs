//! A road-network-style scenario: a weighted grid ("city blocks" with
//! varying travel times), several hub labeling constructions, and a
//! point-to-point query latency comparison against plain Dijkstra — the
//! practical setting the paper's introduction motivates (§1.1,
//! "hub labeling in practice").
//!
//! Run with: `cargo run --release --example road_network`

use std::time::Instant;

use hub_labeling::core::cover::verify_from_sources;
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::core::LabelingStats;
use hub_labeling::graph::dijkstra::{bidirectional_distance, dijkstra_distance_between};
use hub_labeling::graph::{generators, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 50x50 weighted grid: 2500 intersections, ~4900 road segments.
    let g = generators::weighted_grid(50, 50, 7);
    println!(
        "road network: n = {}, m = {}, total length = {}",
        g.num_nodes(),
        g.num_edges(),
        g.total_weight()
    );

    // Build labelings with two orders; betweenness emulates the
    // "important junction first" heuristics of practical systems.
    let t0 = Instant::now();
    let by_degree = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let t_deg = t0.elapsed();
    let t0 = Instant::now();
    let by_btw = PrunedLandmarkLabeling::by_betweenness(&g, 24, 3)
        .expect("betweenness order")
        .into_labeling();
    let t_btw = t0.elapsed();
    println!(
        "PLL degree order:      {} (built in {t_deg:.2?})",
        LabelingStats::of(&by_degree)
    );
    println!(
        "PLL betweenness order: {} (built in {t_btw:.2?})",
        LabelingStats::of(&by_btw)
    );

    // Spot-verify exactness from a handful of sources.
    let sources: Vec<NodeId> = vec![0, 1111, 2345, 2499];
    let report = verify_from_sources(&g, &by_btw, &sources);
    println!(
        "verification from {} sources: exact = {}",
        sources.len(),
        report.is_exact()
    );
    assert!(report.is_exact());

    // Latency: hub-label queries vs Dijkstra vs bidirectional Dijkstra.
    let queries: Vec<(NodeId, NodeId)> = (0..2_000u64)
        .map(|i| (((i * 997) % 2500) as NodeId, ((i * 31) % 2500) as NodeId))
        .collect();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(u, v) in &queries {
        acc = acc.wrapping_add(by_btw.query(u, v));
    }
    let t_labels = t0.elapsed();
    let t0 = Instant::now();
    let mut acc2 = 0u64;
    for &(u, v) in queries.iter().take(50) {
        acc2 = acc2.wrapping_add(dijkstra_distance_between(&g, u, v));
    }
    let t_dij = t0.elapsed() * (queries.len() as u32 / 50);
    let t0 = Instant::now();
    let mut acc3 = 0u64;
    for &(u, v) in queries.iter().take(50) {
        acc3 = acc3.wrapping_add(bidirectional_distance(&g, u, v));
    }
    let t_bid = t0.elapsed() * (queries.len() as u32 / 50);
    std::hint::black_box((acc, acc2, acc3));
    println!(
        "2000 queries: hub labels {t_labels:.2?} | Dijkstra ~{t_dij:.2?} | bidirectional ~{t_bid:.2?}"
    );
    println!(
        "speedup over Dijkstra: ~{:.0}x",
        t_dij.as_secs_f64() / t_labels.as_secs_f64()
    );

    // The practical competitors the paper mentions: ALT and Contraction
    // Hierarchies, cross-checked against the labels on sampled queries.
    use hub_labeling::oracles::oracle::{cross_check, DistanceOracle, HubLabelOracle};
    use hub_labeling::oracles::{AltOracle, ContractionHierarchy};
    let t0 = Instant::now();
    let alt = AltOracle::with_farthest_landmarks(&g, 8);
    let t_alt_build = t0.elapsed();
    let t0 = Instant::now();
    let ch = ContractionHierarchy::build(&g);
    let t_ch_build = t0.elapsed();
    println!(
        "ALT built in {t_alt_build:.2?} ({} landmarks) | CH built in {t_ch_build:.2?} ({} shortcuts)",
        alt.landmarks().len(),
        ch.num_shortcuts()
    );
    let hub_oracle = HubLabelOracle { labeling: by_btw };
    let sample: Vec<_> = queries.iter().copied().take(200).collect();
    let oracles: [&dyn DistanceOracle; 3] = [&hub_oracle, &alt, &ch];
    match cross_check(&oracles, &sample) {
        None => println!("cross-check: hub labels, ALT and CH agree on all sampled queries"),
        Some((name, u, v, got, want)) => {
            println!("cross-check FAILED: {name} said d({u},{v}) = {got}, expected {want}");
            std::process::exit(1);
        }
    }
    Ok(())
}
