//! The Sum-Index reduction of Theorem 1.6, run as an actual protocol:
//! Alice and Bob share a word `S` and deterministically build the same
//! pruned gadget and distance labeling; the referee answers
//! `S_{(a+b) mod m}` from two labels and two indices alone.
//!
//! Run with: `cargo run --release --example sumindex_protocol`

use hub_labeling::lowerbound::GadgetParams;
use hub_labeling::sumindex::protocol::GraphProtocol;
use hub_labeling::sumindex::repr::Repr;
use hub_labeling::sumindex::SumIndexInstance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GadgetParams::new(3, 2)?;
    let m = Repr::new(params).modulus() as usize;
    println!("gadget {params}: word length m = {m}");

    // The shared word (both parties know S; only a and b are private).
    let instance = SumIndexInstance::random(m, 2024);

    // Both parties compute the same setup (pruned graph + labeling).
    let protocol = GraphProtocol::new(params, &instance)?;

    // One round, narrated.
    let (a, b) = (5u64, 14u64);
    let alice = protocol.alice_message(a);
    let bob = protocol.bob_message(b);
    println!(
        "Alice sends label of v_(0,2x) + a: {} bits; Bob sends {} bits",
        alice.num_bits(m),
        bob.num_bits(m)
    );
    let answer = protocol.referee(&alice, &bob);
    println!(
        "referee: S_(({a}+{b}) mod {m}) = S_{} = {} (truth: {})",
        (a as usize + b as usize) % m,
        answer,
        instance.answer(a as usize, b as usize)
    );
    assert_eq!(answer, instance.answer(a as usize, b as usize));

    // Exhaustive correctness sweep.
    let mut wrong = 0;
    for a in 0..m as u64 {
        for b in 0..m as u64 {
            if protocol.run(a, b) != instance.answer(a as usize, b as usize) {
                wrong += 1;
            }
        }
    }
    println!("exhaustive sweep: {wrong} wrong answers out of {}", m * m);
    assert_eq!(wrong, 0);

    let costs = protocol.costs();
    println!(
        "costs: max message {} bits | naive protocol {} bits | sqrt(m) anchor {:.1}",
        costs.max_message_bits, costs.naive_bits, costs.sqrt_m
    );
    Ok(())
}
