//! Quickstart: build a sparse graph, construct an exact hub labeling,
//! answer distance queries, and verify exactness.
//!
//! Run with: `cargo run --release --example quickstart`

use hub_labeling::core::cover::verify_exact;
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::core::LabelingStats;
use hub_labeling::graph::generators;
use hub_labeling::labeling::hub_scheme::encode_labeling;
use hub_labeling::labeling::SchemeStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A connected sparse random graph: 2000 vertices, 3000 edges.
    let g = generators::connected_gnm(2_000, 1_000, 42);
    println!(
        "graph: n = {}, m = {}, avg degree = {:.2}",
        g.num_nodes(),
        g.num_edges(),
        g.average_degree()
    );

    // Pruned Landmark Labeling with degree ordering — exact by construction.
    let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    println!("labeling: {}", LabelingStats::of(&labeling));

    // Answer a few queries through the label merge-join alone.
    for (u, v) in [(0u32, 1999u32), (17, 1234), (500, 501)] {
        println!("d({u}, {v}) = {}", labeling.query(u, v));
    }

    // Bit-encoded distance labels (what the paper measures).
    let bits = SchemeStats::of(&encode_labeling(&labeling));
    println!(
        "bit labels: avg {:.0} bits/vertex, max {} bits",
        bits.average_bits, bits.max_bits
    );

    // Full verification against ground truth (quadratic; fine at n = 2000).
    let report = verify_exact(&g, &labeling)?;
    println!(
        "verification: {} pairs checked, exact = {}",
        report.pairs_checked,
        report.is_exact()
    );
    assert!(report.is_exact());
    Ok(())
}
