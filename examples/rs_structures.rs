//! The Ruzsa–Szemerédi machinery behind the paper's bounds: Behrend
//! progression-free sets, RS graphs with verified induced-matching
//! partitions, and the empirical `RS(n)` witnesses that calibrate the
//! Theorem 4.1 construction.
//!
//! Run with: `cargo run --release --example rs_structures`

use hub_labeling::rs::behrend::{self, is_ap_free};
use hub_labeling::rs::induced::{greedy_induced_partition, is_induced_matching_partition};
use hub_labeling::rs::{rs_function, RsGraph};

fn main() {
    // 1. Progression-free sets: greedy (Stanley) vs Behrend spheres.
    println!("3-AP-free set densities in [0, n):");
    for n in [1_000u64, 10_000, 100_000] {
        let d = behrend::density(n);
        println!(
            "  n = {:>6}: greedy {:>5}  behrend {:>4}  (n/|B| = {:.1})",
            d.n, d.greedy, d.behrend, d.gap_factor
        );
    }
    let b = behrend::best_ap_free_set(10_000);
    assert!(is_ap_free(&b));
    println!(
        "best set at n = 10000 has {} elements (verified 3-AP-free)",
        b.len()
    );

    // 2. The RS graph: one induced matching per base point.
    let rs = RsGraph::behrend(2_000);
    println!(
        "\nRS graph: {} vertices, {} edges, {} induced matchings of size {}",
        rs.graph().num_nodes(),
        rs.graph().num_edges(),
        rs.matchings().len(),
        rs.difference_set().len()
    );
    assert!(rs.is_ruzsa_szemeredi());
    assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
    println!("induced-matching partition verified ✓");
    println!(
        "certified upper-bound witness: RS(n) <= n²/m = {:.1}",
        rs.rs_upper_witness()
    );

    // 3. Compare with a generic graph: the greedy partitioner needs many
    //    more matchings on dense structures.
    let clique = hub_labeling::graph::generators::complete(12);
    let parts = greedy_induced_partition(&clique);
    println!(
        "\ncontrast: K12 ({} edges) needs {} induced matchings (no two clique edges are independent)",
        clique.num_edges(),
        parts.len()
    );
    assert_eq!(parts.len(), clique.num_edges());

    // 4. Witness sweep, as used to pick the Theorem 4.1 threshold D.
    println!("\nRS(n) upper-bound witnesses vs the 2^sqrt(log n) heuristic:");
    for target in [200usize, 2_000, 10_000] {
        let w = rs_function::witness(target);
        println!(
            "  n = {:>5}: m = {:>6}, RS <= {:>6.1}, heuristic = {:.1}",
            w.n, w.m, w.rs_upper, w.rs_heuristic
        );
    }
}
