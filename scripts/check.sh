#!/usr/bin/env bash
# One-command gate: formatting, lints, static analysis, tier-1 build +
# tests, and the end-to-end serving smoke test. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== hublint (token + semantic rules, gated against the committed baseline) =="
# The baseline is committed empty; --diff makes any new finding — a fresh
# narrowing cast, a swallowed Result, a lock-order cycle, an unchecked
# allocation — fail the gate even if someone pads the baseline later.
cargo run -q --release -p hl-lint -- --baseline hublint-baseline.json --diff

echo "== cargo doc (no-deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1 build =="
cargo build --release

# The workspace suite is a strict superset of the root package's suite
# (root targets are workspace members), so one invocation covers tier-1.
echo "== workspace tests =="
cargo test --workspace -q

echo "== hlnp-fuzz (seeded, bounded) =="
# Protocol + store fuzz against a throwaway in-memory labeling: exits 1
# on any panic, wrong liveness answer, or silently-accepted corruption,
# 2 if its own wall-clock guard fires. `timeout` is the outer hang net.
timeout 240 ./target/release/hlnp-fuzz --seed 5 --iters 2000 --max-seconds 180

echo "== parallel-build smoke (~100k vertices, bounded) =="
# Exercises the hl-build batch/commit pipeline at a size the unit tests
# don't reach: a ~131k-vertex RMAT graph, 2 worker threads, degree
# order, flowing into the binary store and back out through stats.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
timeout 600 ./target/release/hubserve build "$SMOKE/parallel.hlbs" \
  --gen rmat --nodes 100000 --edges 400000 --seed 9 --threads 2 \
  --order degree --bench-json "$SMOKE/parallel.json"
grep -q '"bench":"build"' "$SMOKE/parallel.json"
./target/release/hubserve stats "$SMOKE/parallel.hlbs" > "$SMOKE/stats.txt"
grep -q 'arena entries' "$SMOKE/stats.txt"

echo "== kick-tires =="
bash scripts/kick-tires.sh

echo "check: OK"
