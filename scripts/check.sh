#!/usr/bin/env bash
# One-command gate: formatting, lints, tier-1 build + tests, and the
# end-to-end serving smoke test. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== kick-tires =="
bash scripts/kick-tires.sh

echo "check: OK"
