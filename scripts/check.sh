#!/usr/bin/env bash
# One-command gate: formatting, lints, static analysis, tier-1 build +
# tests, and the end-to-end serving smoke test. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== hublint (token + semantic rules, gated against the committed baseline) =="
# The baseline is committed empty; --diff makes any new finding — a fresh
# narrowing cast, a swallowed Result, a lock-order cycle, an unchecked
# allocation — fail the gate even if someone pads the baseline later.
cargo run -q --release -p hl-lint -- --baseline hublint-baseline.json --diff

echo "== cargo doc (no-deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1 build =="
# --workspace so every member's binaries land in target/release (the
# root package alone builds members as libs only, skipping e.g. the
# hl-shard and hlnp-fuzz bins the smokes below invoke).
cargo build --release --workspace

# The workspace suite is a strict superset of the root package's suite
# (root targets are workspace members), so one invocation covers tier-1.
echo "== workspace tests =="
cargo test --workspace -q

echo "== hlnp-fuzz (seeded, bounded) =="
# Protocol + store fuzz against a throwaway in-memory labeling: exits 1
# on any panic, wrong liveness answer, or silently-accepted corruption,
# 2 if its own wall-clock guard fires. `timeout` is the outer hang net.
timeout 240 ./target/release/hlnp-fuzz --seed 5 --iters 2000 --max-seconds 180

echo "== parallel-build smoke (~100k vertices, bounded) =="
# Exercises the hl-build batch/commit pipeline at a size the unit tests
# don't reach: a ~131k-vertex RMAT graph, 2 worker threads, degree
# order, flowing into the binary store and back out through stats.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
timeout 600 ./target/release/hubserve build "$SMOKE/parallel.hlbs" \
  --gen rmat --nodes 100000 --edges 400000 --seed 9 --threads 2 \
  --order degree --bench-json "$SMOKE/parallel.json"
grep -q '"bench":"build"' "$SMOKE/parallel.json"
./target/release/hubserve stats "$SMOKE/parallel.hlbs" > "$SMOKE/stats.txt"
grep -q 'arena entries' "$SMOKE/stats.txt"

echo "== store format round-trip (v1 -> v2 -> v1, byte-identical) =="
# γ-coding is canonical and v2 is a verbatim arena dump, so converting
# there and back must reproduce the original file exactly — the property
# that makes `hubserve convert` safe to run on archival stores.
timeout 120 ./target/release/hubserve build "$SMOKE/rt-v1.hlbs" \
  --gen gnm --nodes 2000 --edges 6000 --seed 3
timeout 120 ./target/release/hubserve convert "$SMOKE/rt-v1.hlbs" "$SMOKE/rt-v2.hlbs" \
  --to v2 --verify-roundtrip
timeout 120 ./target/release/hubserve convert "$SMOKE/rt-v2.hlbs" "$SMOKE/rt-back.hlbs" \
  --to v1 --verify-roundtrip
cmp "$SMOKE/rt-v1.hlbs" "$SMOKE/rt-back.hlbs"
./target/release/hubserve stats "$SMOKE/rt-v2.hlbs" > "$SMOKE/rt-stats.txt"
grep -Eq 'format version +2' "$SMOKE/rt-stats.txt"
grep -q 'section offsets' "$SMOKE/rt-stats.txt"

echo "== sharded serving smoke (2 shards, routed == unsharded) =="
# Partition the round-trip store, serve each shard from its own daemon,
# and check the router's answers byte-for-byte against the unsharded
# query path — including cross-shard pairs (0 % 2 != 1 % 2).
timeout 120 ./target/release/hl-shard partition "$SMOKE/rt-v2.hlbs" "$SMOKE/shards" --shards 2
printf '0 1\n0 2\n1 3\n5 1999\n' > "$SMOKE/shard-pairs.txt"
timeout 120 ./target/release/hubserve query "$SMOKE/rt-v2.hlbs" "$SMOKE/shard-pairs.txt" \
  > "$SMOKE/unsharded.txt"
./target/release/hubserve serve "$SMOKE/shards/shard-0.hlbs" --addr 127.0.0.1:0 \
  > "$SMOKE/shard0.log" 2>&1 &
SHARD0_PID=$!
./target/release/hubserve serve "$SMOKE/shards/shard-1.hlbs" --addr 127.0.0.1:0 \
  > "$SMOKE/shard1.log" 2>&1 &
SHARD1_PID=$!
for log in "$SMOKE/shard0.log" "$SMOKE/shard1.log"; do
  for _ in $(seq 1 100); do
    grep -q '^listening on ' "$log" && break
    sleep 0.1
  done
done
ADDR0=$(sed -n 's/^listening on //p' "$SMOKE/shard0.log" | head -n 1)
ADDR1=$(sed -n 's/^listening on //p' "$SMOKE/shard1.log" | head -n 1)
timeout 120 ./target/release/hl-shard query --shard "$ADDR0" --shard "$ADDR1" \
  "$SMOKE/shard-pairs.txt" > "$SMOKE/routed.txt"
kill "$SHARD0_PID" "$SHARD1_PID"
wait "$SHARD0_PID" "$SHARD1_PID" 2>/dev/null || true
diff -u "$SMOKE/unsharded.txt" "$SMOKE/routed.txt"

echo "== compact arena smoke (v2c flavor, flat == compact answers) =="
# The v2c flavor delta-codes hub ids and narrows the distance lanes;
# converting there and back must lose nothing, the query path must match
# the flat store line for line, and the bench head-to-head must verify
# identical answers on its whole pair stream.
timeout 120 ./target/release/hubserve convert "$SMOKE/rt-v2.hlbs" "$SMOKE/rt-v2c.hlbs" \
  --to v2c --verify-roundtrip
./target/release/hubserve stats "$SMOKE/rt-v2c.hlbs" > "$SMOKE/v2c-stats.txt"
grep -q 'flavor v2c' "$SMOKE/v2c-stats.txt"
grep -q 'arena kind         compact' "$SMOKE/v2c-stats.txt"
timeout 120 ./target/release/hubserve query "$SMOKE/rt-v2c.hlbs" "$SMOKE/shard-pairs.txt" \
  > "$SMOKE/v2c-answers.txt"
diff -u "$SMOKE/unsharded.txt" "$SMOKE/v2c-answers.txt"
timeout 240 ./target/release/hubserve bench "$SMOKE/rt-v2c.hlbs" --queries 20000 \
  --workers 2 --bench-json "$SMOKE/v2c-bench.json" > "$SMOKE/v2c-bench.txt"
grep -q 'head-to-head' "$SMOKE/v2c-bench.txt"
grep -q '"verified_identical":20000' "$SMOKE/v2c-bench.json"

echo "== bench snapshot schema check =="
# Every committed BENCH_*.json carries the shared schema keys — bench
# name, RNG seed, graph size, and the host-parallelism caveat field — so
# cross-PR comparisons always know what they are looking at.
for f in BENCH_*.json; do
  for key in '"bench"' '"seed"' '"n"' '"nproc"'; do
    grep -q "$key" "$f" || { echo "schema check FAILED: $f lacks $key"; exit 1; }
  done
done
# And the snapshots the smokes just produced follow the same schema.
for f in "$SMOKE/parallel.json" "$SMOKE/v2c-bench.json"; do
  for key in '"bench"' '"seed"' '"n"' '"nproc"'; do
    grep -q "$key" "$f" || { echo "schema check FAILED: $f lacks $key"; exit 1; }
  done
done

echo "== kick-tires =="
bash scripts/kick-tires.sh

echo "check: OK"
