#!/usr/bin/env bash
# Offline end-to-end smoke test of the serving pipeline:
#   hubtool gen       -> plain-text graph
#   hubtool build     -> text labeling  (ground-truth path)
#   hubtool verify    -> labels are exact against the graph
#   hubserve build    -> binary label store
#   hubserve stats    -> store reports the flat arena it decodes into
#   hubserve query    -> answers from the store
#   diff              -> store answers == ground-truth label answers
#   hubserve bench    -> the load generator runs and reports a snapshot
#   hubserve serve    -> TCP daemon on an ephemeral loopback port
#   hubserve convert  -> v1 store migrated to v2, round-trip verified
#   hubserve reload   -> live daemon hot-swaps onto the v2 store; a
#                        reload from a missing path must fail without
#                        evicting the healthy epoch
#   netbench          -> drives the daemon over the wire twice — a
#                        protocol-v2 multiplexed client with 256
#                        requests in flight on one connection, then a
#                        protocol-v1 lock-step client on the same port —
#                        then shuts it down; the daemon must exit 0
# Exits nonzero on the first mismatch or failure.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES=${NODES:-400}
SEED=${SEED:-1}
SAMPLE=${SAMPLE:-8}   # diff all pairs over the first SAMPLE vertices

echo "== kick-tires: building binaries =="
cargo build --release -p hl-bench -p hl-net -p hl-lint >/dev/null

echo "== hublint: workspace must lint clean =="
target/release/hublint

HUBTOOL=target/release/hubtool
HUBSERVE=target/release/hubserve
NETBENCH=target/release/netbench
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== generating a ${NODES}-node grid =="
"$HUBTOOL" gen grid "$NODES" "$SEED" "$TMP/graph.txt"

echo "== ground truth: text labeling, verified exact =="
"$HUBTOOL" build "$TMP/graph.txt" "$TMP/labels.txt" pll
"$HUBTOOL" verify "$TMP/graph.txt" "$TMP/labels.txt"

echo "== serving path: binary store (parallel build, 2 threads) =="
"$HUBSERVE" build "$TMP/graph.txt" "$TMP/store.hlbs" --threads 2

echo "== store stats report the flat arena =="
"$HUBSERVE" stats "$TMP/store.hlbs" | tee "$TMP/stats.txt"
grep -q 'arena entries' "$TMP/stats.txt"
grep -q 'arena heap bytes' "$TMP/stats.txt"

echo "== diffing store answers against ground truth on ${SAMPLE}x${SAMPLE} pairs =="
: > "$TMP/pairs.txt"
: > "$TMP/expected.txt"
for ((u = 0; u < SAMPLE; u++)); do
  for ((v = 0; v < SAMPLE; v++)); do
    echo "$u $v" >> "$TMP/pairs.txt"
    d=$("$HUBTOOL" query "$TMP/labels.txt" "$u" "$v" | sed -e 's/.*= //' -e 's/unreachable/inf/')
    echo "$u $v $d" >> "$TMP/expected.txt"
  done
done
"$HUBSERVE" query "$TMP/store.hlbs" "$TMP/pairs.txt" > "$TMP/served.txt"
if ! diff -u "$TMP/expected.txt" "$TMP/served.txt"; then
  echo "kick-tires: FAIL — served distances disagree with ground truth" >&2
  exit 1
fi
echo "all $((SAMPLE * SAMPLE)) sampled distances agree"

echo "== corruption check: a damaged store must refuse to serve =="
cp "$TMP/store.hlbs" "$TMP/bad.hlbs"
size=$(wc -c < "$TMP/bad.hlbs")
printf '\xff' | dd of="$TMP/bad.hlbs" bs=1 seek=$((size / 2)) conv=notrunc status=none
if "$HUBSERVE" query "$TMP/bad.hlbs" "$TMP/pairs.txt" > /dev/null 2> "$TMP/bad.err"; then
  echo "kick-tires: FAIL — corrupt store served answers" >&2
  exit 1
fi
grep -qi 'checksum\|corrupt\|truncated' "$TMP/bad.err"
echo "corrupt store rejected: $(cat "$TMP/bad.err")"

echo "== load generator =="
"$HUBSERVE" bench "$TMP/store.hlbs" --queries 20000 --batch 512 --workers 4 --seed 7

echo "== network serving: daemon on loopback + netbench over the wire =="
"$HUBSERVE" serve "$TMP/store.hlbs" --addr 127.0.0.1:0 > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' "$TMP/serve.log" | head -n 1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "kick-tires: FAIL — daemon never announced its address" >&2
  cat "$TMP/serve.log" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
echo "daemon is listening on $ADDR"

echo "== hot reload: swap the live daemon onto a v2 store =="
"$HUBSERVE" convert "$TMP/store.hlbs" "$TMP/store-v2.hlbs" --to v2 --verify-roundtrip
"$HUBSERVE" reload "$ADDR" "$TMP/store-v2.hlbs" | tee "$TMP/reload.txt"
grep -q 'epoch 1' "$TMP/reload.txt"
if "$HUBSERVE" reload "$ADDR" "$TMP/does-not-exist.hlbs" 2> "$TMP/reload-bad.err"; then
  echo "kick-tires: FAIL — reload from a missing store reported success" >&2
  exit 1
fi
echo "bad reload rejected: $(cat "$TMP/reload-bad.err")"
# The failed reload must not have evicted the healthy epoch: the bench
# below hammers the daemon post-swap and it must still answer exactly.

echo "== mux client: v2 handshake, 256 requests in flight on one connection =="
"$NETBENCH" "$ADDR" --mode mux --inflight 256 --conns 1 --queries 20000 --seed 7 \
  | tee "$TMP/mux.txt"
grep -q 'inflight  256' "$TMP/mux.txt"

echo "== lock-step client: v1 handshake still served on the same port =="
"$NETBENCH" "$ADDR" --mode closed --conns 2 --queries 20000 --batch 256 --seed 7 --shutdown
if ! wait "$SERVE_PID"; then
  echo "kick-tires: FAIL — daemon did not exit cleanly after shutdown" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
echo "daemon exited 0 after graceful shutdown"

echo "kick-tires: OK"
