//! Large-instance stress tests, `#[ignore]`d by default. Run with
//! `cargo test --release -- --ignored` (several minutes total).

use hub_labeling::core::cover::{verify_from_sources_parallel, verify_hub_distances};
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::core::psl::psl_labeling;
use hub_labeling::graph::{generators, NodeId};
use hub_labeling::lowerbound::sampling::{audit_sampled, check_sampled_pairs};
use hub_labeling::lowerbound::{GadgetParams, HGraph};
use hub_labeling::oracles::ContractionHierarchy;

#[test]
fn pll_on_sparse_graph_smoke() {
    // Non-ignored miniature of `pll_on_ten_thousand_vertex_sparse_graph`
    // so CI exercises the build-verify pipeline on every run; the full
    // 10k-vertex version stays behind `--ignored`.
    let g = generators::connected_gnm(1_200, 600, 42);
    let labeling = PrunedLandmarkLabeling::by_betweenness(&g, 16, 1)
        .expect("betweenness order")
        .into_labeling();
    let sources: Vec<NodeId> = (0..1_200).step_by(101).map(|v| v as NodeId).collect();
    let report = verify_from_sources_parallel(&g, &labeling, &sources);
    assert!(report.is_exact(), "{:?}", report.violations.first());
    assert!(verify_hub_distances(&g, &labeling, &sources));
}

#[test]
#[ignore = "stress: ~1 minute in release"]
fn pll_on_ten_thousand_vertex_sparse_graph() {
    let g = generators::connected_gnm(10_000, 5_000, 42);
    let labeling = PrunedLandmarkLabeling::by_betweenness(&g, 32, 1)
        .expect("betweenness order")
        .into_labeling();
    let sources: Vec<NodeId> = (0..10_000).step_by(211).map(|v| v as NodeId).collect();
    let report = verify_from_sources_parallel(&g, &labeling, &sources);
    assert!(report.is_exact(), "{:?}", report.violations.first());
    assert!(verify_hub_distances(&g, &labeling, &sources));
}

#[test]
#[ignore = "stress: large gadget, sampled verification"]
fn gadget_h33_full_pipeline() {
    let p = GadgetParams::new(3, 3).unwrap();
    let h = HGraph::build(p);
    assert_eq!(h.graph().num_nodes() as u64, p.h_num_nodes());
    assert!(check_sampled_pairs(&h, 256, 7).is_empty());
    let labeling = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
    let report = audit_sampled(&h, &labeling, 128, 8);
    assert!(report.all_charged());
    assert!(labeling.average_hubs() >= p.h_avg_hub_lower_bound());
    // The near-linear ratio persists at this scale.
    let ratio = labeling.average_hubs() / h.graph().num_nodes() as f64;
    assert!(ratio > 0.15, "ratio {ratio}");
}

#[test]
#[ignore = "stress: CH on a 10k-vertex weighted grid"]
fn contraction_hierarchy_scales() {
    let g = generators::weighted_grid(100, 100, 5);
    let ch = ContractionHierarchy::build(&g);
    let truth = hub_labeling::graph::dijkstra::dijkstra_distances(&g, 0);
    for t in (0..10_000u32).step_by(509) {
        assert_eq!(ch.query(0, t), truth[t as usize]);
    }
}

#[test]
#[ignore = "stress: PSL threads on a 5k-vertex graph"]
fn psl_parallel_scales() {
    let g = generators::connected_gnm(5_000, 2_500, 9);
    let ord = hub_labeling::core::order::by_degree(&g);
    let labeling = psl_labeling(&g, ord, 8).unwrap();
    let sources: Vec<NodeId> = (0..5_000).step_by(401).map(|v| v as NodeId).collect();
    assert!(verify_from_sources_parallel(&g, &labeling, &sources).is_exact());
}

#[test]
#[ignore = "stress: G'(4,2) protocol, ~6M-vertex degree-3 graph"]
fn gprime_protocol_at_b4() {
    use hub_labeling::sumindex::g_protocol::GPrimeProtocol;
    use hub_labeling::sumindex::repr::Repr;
    use hub_labeling::sumindex::SumIndexInstance;
    let params = GadgetParams::new(4, 2).unwrap();
    let m = Repr::new(params).modulus() as usize;
    let instance = SumIndexInstance::random(m, 3);
    let protocol = GPrimeProtocol::new(params, &instance).unwrap();
    assert!(protocol.max_degree() <= 3);
    // Sampled input sweep (full m² = 4096 pairs also fine, but keep it short).
    for a in 0..m as u64 {
        let b = (a * 13 + 5) % m as u64;
        assert_eq!(protocol.run(a, b), instance.answer(a as usize, b as usize));
    }
}
