//! Cross-crate integration tests: each test exercises a full pipeline the
//! way a downstream user would (graph → construction → encoding → query →
//! verification).

use hub_labeling::core::cover::{verify_exact, verify_from_sources};
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hub_labeling::core::rs_based::{project_labeling, rs_labeling, RsParams};
use hub_labeling::core::tree::centroid_labeling;
use hub_labeling::graph::transform::{reduce_degree, subdivide_weights};
use hub_labeling::graph::{generators, NodeId};
use hub_labeling::labeling::full_vector::FullVectorScheme;
use hub_labeling::labeling::hub_scheme::{
    decode_distance, encode_labeling, HubPllScheme, PrecomputedHubScheme,
};
use hub_labeling::labeling::scheme::verify_scheme;
use hub_labeling::labeling::tree_scheme::TreeScheme;
use hub_labeling::labeling::DistanceLabelingScheme;

#[test]
fn all_constructions_agree_on_all_queries() {
    // Four independent exact constructions must answer identically.
    let g = generators::connected_gnm(60, 35, 99);
    let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let (rt, _) = random_threshold_labeling(&g, RandomThresholdParams::for_size(60, 4)).unwrap();
    let (rs, _) = rs_labeling(
        &g,
        RsParams {
            threshold: 3,
            seed: 4,
        },
    )
    .unwrap();
    let greedy = hub_labeling::core::greedy::greedy_cover(&g).unwrap();
    for u in 0..60u32 {
        for v in 0..60u32 {
            let d = pll.query(u, v);
            assert_eq!(rt.query(u, v), d);
            assert_eq!(rs.query(u, v), d);
            assert_eq!(greedy.query(u, v), d);
        }
    }
}

#[test]
fn bit_encoding_roundtrips_every_construction() {
    let g = generators::grid(7, 7);
    for labeling in [
        PrunedLandmarkLabeling::by_degree(&g).into_labeling(),
        rs_labeling(
            &g,
            RsParams {
                threshold: 3,
                seed: 1,
            },
        )
        .unwrap()
        .0,
    ] {
        let encoded = encode_labeling(&labeling);
        for u in 0..49u32 {
            for v in 0..49u32 {
                assert_eq!(
                    decode_distance(&encoded[u as usize], &encoded[v as usize]),
                    labeling.query(u, v)
                );
            }
        }
    }
}

#[test]
fn schemes_all_exact_on_a_tree() {
    let g = generators::random_tree(64, 31);
    assert_eq!(verify_scheme(&HubPllScheme, &g).unwrap(), 0);
    assert_eq!(verify_scheme(&TreeScheme, &g).unwrap(), 0);
    assert_eq!(verify_scheme(&FullVectorScheme, &g).unwrap(), 0);
    let centroid = centroid_labeling(&g).unwrap();
    assert_eq!(
        verify_scheme(&PrecomputedHubScheme::new(centroid), &g).unwrap(),
        0
    );
}

#[test]
fn tree_scheme_much_smaller_than_full_vector() {
    let g = generators::random_tree(256, 8);
    let tree_bits: usize = TreeScheme
        .encode(&g)
        .unwrap()
        .iter()
        .map(|l| l.num_bits())
        .sum();
    let full_bits: usize = FullVectorScheme
        .encode(&g)
        .unwrap()
        .iter()
        .map(|l| l.num_bits())
        .sum();
    assert!(
        tree_bits * 4 < full_bits,
        "centroid labels ({tree_bits}) should be far below full vectors ({full_bits})"
    );
}

#[test]
fn theorem_14_pipeline_on_weighted_input() {
    // Weighted sparse graph: subdivide to unit weights, degree-reduce, run
    // the Theorem 4.1 construction, project back — and stay exact.
    let g = generators::weighted_grid(6, 6, 5);
    let sub = subdivide_weights(&g).unwrap();
    let red = reduce_degree(&sub.graph, 3).unwrap();
    let (hl_red, _) = rs_labeling(
        &red.graph,
        RsParams {
            threshold: 3,
            seed: 2,
        },
    )
    .unwrap();
    assert!(verify_exact(&red.graph, &hl_red).unwrap().is_exact());
    // Project to the subdivided graph's original vertices.
    let hl_sub = project_labeling(&hl_red, &red.representative, &red.origin);
    // Distances on original vertex ids of the subdivision = weighted dists.
    let truth = hub_labeling::graph::apsp::DistanceMatrix::compute(&g).unwrap();
    for u in 0..g.num_nodes() as NodeId {
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(hl_sub.query(u, v), truth.distance(u, v), "pair {u},{v}");
        }
    }
}

#[test]
fn sampled_verification_scales_to_larger_instances() {
    let g = generators::connected_gnm(1_500, 800, 12);
    let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let sources: Vec<NodeId> = (0..1_500).step_by(97).map(|v| v as NodeId).collect();
    let report = verify_from_sources(&g, &labeling, &sources);
    assert!(report.is_exact());
    assert!(report.pairs_checked >= 15 * 1_500);
}

#[test]
fn rs_graph_feeds_induced_partition_checker() {
    // The RS crate's graphs satisfy the hl-rs induced checker AND the
    // greedy partitioner never needs more matchings than the explicit one.
    let rs = hub_labeling::rs::RsGraph::behrend(250);
    assert!(hub_labeling::rs::induced::is_induced_matching_partition(
        rs.graph(),
        rs.matchings()
    ));
    let greedy = hub_labeling::rs::induced::greedy_induced_partition(rs.graph());
    assert!(!greedy.is_empty());
    assert!(hub_labeling::rs::induced::is_induced_matching_partition(
        rs.graph(),
        &greedy
    ));
}
