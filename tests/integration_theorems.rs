//! Theorem-level integration tests: each test executes one of the paper's
//! statements as a finite, checkable claim on concrete instances.

use hub_labeling::core::monotone::MonotoneClosure;
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::core::rs_based::{rs_labeling, RsParams};
use hub_labeling::lowerbound::accounting::{audit_g, audit_h, h_triples};
use hub_labeling::lowerbound::midpoint::{check_all_pairs, check_g_matches_h};
use hub_labeling::lowerbound::removal::{decode_midpoint_presence, RemovedMiddle};
use hub_labeling::lowerbound::{GGraph, GadgetParams, HGraph};
use hub_labeling::sumindex::naive;
use hub_labeling::sumindex::protocol::GraphProtocol;
use hub_labeling::sumindex::repr::Repr;
use hub_labeling::sumindex::SumIndexInstance;

/// Theorem 2.1 claims (i)+(ii): node count within the stated envelope and
/// max degree exactly 3.
#[test]
fn theorem21_claims_i_and_ii() {
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2), (2, 2)] {
        let p = GadgetParams::new(b, ell).unwrap();
        let g = GGraph::build(p);
        assert_eq!(g.graph().max_degree(), 3);
        // |V(G)| = 2^{bℓ} · 2^{Θ(b + log ℓ)}: sanity envelope — the count is
        // dominated by total edge weight ≈ 2ℓ s^{ℓ+1} A.
        let s = p.side();
        let upper = 4 * s * p.h_num_nodes() + (3 * ell as u64 + 1) * s * s * p.h_num_edges();
        assert!((g.graph().num_nodes() as u64) <= upper, "G({b},{ell})");
        assert!(
            (g.graph().num_nodes() as u64) >= p.h_num_nodes(),
            "G({b},{ell})"
        );
    }
}

/// Theorem 2.1 claim (iii), executable form: the triplet audit charges all
/// triples for any exact labeling, on H and on G.
#[test]
fn theorem21_claim_iii_counting() {
    let p = GadgetParams::new(2, 2).unwrap();
    let h = HGraph::build(p);
    for labeling in [
        PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling(),
        PrunedLandmarkLabeling::by_random_order(h.graph(), 7).into_labeling(),
    ] {
        let report = audit_h(&h, &labeling);
        assert!(report.all_charged());
        // The counting bound: sum of |S*| over endpoints alone is already
        // >= number of triples.
        assert!(report.star_total_at_endpoints >= report.triples);
    }
    let p = GadgetParams::new(1, 2).unwrap();
    let h = HGraph::build(p);
    let g = GGraph::from_hgraph(&h);
    let labeling = PrunedLandmarkLabeling::by_degree(g.graph()).into_labeling();
    assert!(audit_g(&h, &g, &labeling).all_charged());
}

/// Lemma 2.2 in full, plus the `dist_G = dist_H` bridge.
#[test]
fn lemma22_and_distance_bridge() {
    for (b, ell) in [(1u32, 1u32), (2, 1), (1, 2), (2, 2)] {
        let h = HGraph::build(GadgetParams::new(b, ell).unwrap());
        assert!(check_all_pairs(&h).is_empty(), "H({b},{ell})");
    }
    let h = HGraph::build(GadgetParams::new(2, 1).unwrap());
    let g = GGraph::from_hgraph(&h);
    assert_eq!(check_g_matches_h(&h, &g), Ok(()));
}

/// Theorem 1.1 shape: average hub size on the gadget family grows linearly
/// with the layer size `s^ℓ` (up to the 2^{-ℓ} factor), in stark contrast
/// to trees of comparable size.
#[test]
fn theorem11_hub_growth_shape() {
    let mut gadget_avgs = Vec::new();
    for (b, ell) in [(2u32, 2u32), (3, 2)] {
        let p = GadgetParams::new(b, ell).unwrap();
        let h = HGraph::build(p);
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        assert!(hl.average_hubs() >= p.h_avg_hub_lower_bound());
        gadget_avgs.push((p.level_size(), hl.average_hubs()));
    }
    // Quadrupling the layer size (s 4 -> 8 at ℓ=2) should multiply the
    // average hub size by well over 2.
    assert!(gadget_avgs[1].1 > 2.0 * gadget_avgs[0].1, "{gadget_avgs:?}");
    // Contrast: a tree of the same size as H(3,2) has tiny labels.
    let tree = hub_labeling::graph::generators::random_tree(320, 1);
    let tree_hl = PrunedLandmarkLabeling::by_betweenness(&tree, 32, 2)
        .expect("betweenness order")
        .into_labeling();
    assert!(tree_hl.average_hubs() * 4.0 < gadget_avgs[1].1);
}

/// Theorem 1.4: the RS-based construction is exact and its monotone
/// closure accounting stays consistent on bounded-degree sparse graphs.
#[test]
fn theorem14_rs_construction_on_bounded_degree() {
    let g = hub_labeling::graph::generators::union_of_matchings(80, 3, 17);
    let (hl, bd) = rs_labeling(
        &g,
        RsParams {
            threshold: 3,
            seed: 6,
        },
    )
    .unwrap();
    assert!(hub_labeling::core::cover::verify_exact(&g, &hl)
        .unwrap()
        .is_exact());
    assert!(bd.global_hubs > 0);
    let mc = MonotoneClosure::compute(&g, &hl);
    assert!(mc.total_size() >= hl.total_hubs());
}

/// Observation 3.1: midpoint presence decodes from one distance, under
/// arbitrary removal patterns.
#[test]
fn observation31_decoding() {
    let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
    let params = h.params();
    type KeepFn<'a> = &'a dyn Fn(&[u64]) -> bool;
    let patterns: [KeepFn; 3] = [
        &|y: &[u64]| y[0].is_multiple_of(2),
        &|y: &[u64]| y[0] + y[1] != 3,
        &|_: &[u64]| true,
    ];
    for keep in patterns {
        let pruned = RemovedMiddle::build(&h, keep);
        for (x, z, mid) in h.even_pairs() {
            let d = hub_labeling::graph::dijkstra::dijkstra_distance_between(
                pruned.graph(),
                h.node_id(0, &x),
                h.node_id(4, &z),
            );
            assert_eq!(decode_midpoint_presence(&params, &x, &z, d), keep(&mid));
        }
    }
}

/// Theorem 1.6 end to end: the labeling-based protocol is correct on every
/// input pair of several instances, and both protocols agree.
#[test]
fn theorem16_protocol_correct() {
    let params = GadgetParams::new(2, 2).unwrap();
    let m = Repr::new(params).modulus() as usize;
    for seed in [0u64, 1, 2] {
        let instance = SumIndexInstance::random(m, seed);
        let protocol = GraphProtocol::new(params, &instance).unwrap();
        for a in 0..m {
            for b in 0..m {
                let graph_answer = protocol.run(a as u64, b as u64);
                let naive_answer = naive::referee(
                    m,
                    &naive::alice_message(&instance, a),
                    &naive::bob_message(&instance, b),
                );
                assert_eq!(graph_answer, instance.answer(a, b));
                assert_eq!(naive_answer, instance.answer(a, b));
            }
        }
    }
}

/// The triples of the counting argument are injective in both coordinates
/// (the uniqueness that makes each charge distinct).
#[test]
fn triples_injectivity() {
    let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
    let ts = h_triples(&h);
    let by_sm: std::collections::HashSet<_> = ts.iter().map(|&(u, m, _)| (u, m)).collect();
    let by_mz: std::collections::HashSet<_> = ts.iter().map(|&(_, m, z)| (m, z)).collect();
    assert_eq!(by_sm.len(), ts.len());
    assert_eq!(by_mz.len(), ts.len());
}

/// Capstone: the paper's upper bound meets its lower bound. The
/// Theorem 4.1 construction runs on the Theorem 2.1 gadget `G_{b,ℓ}`
/// (unweighted, max degree 3 — exactly Theorem 4.1's setting), stays
/// exact, and the Theorem 2.1 counting audit charges every triple against
/// it — the two halves of the paper verifying each other.
#[test]
fn theorem41_construction_on_theorem21_gadget() {
    let p = GadgetParams::new(1, 2).unwrap();
    let h = HGraph::build(p);
    let g = GGraph::from_hgraph(&h);
    assert_eq!(g.graph().max_degree(), 3);
    let (labeling, breakdown) = rs_labeling(
        g.graph(),
        RsParams {
            threshold: 3,
            seed: 12,
        },
    )
    .unwrap();
    assert!(
        hub_labeling::core::cover::verify_exact(g.graph(), &labeling)
            .unwrap()
            .is_exact()
    );
    assert!(breakdown.global_hubs > 0);
    let report = audit_g(&h, &g, &labeling);
    assert!(report.all_charged(), "{report:?}");
    // The gadget forces the counting bound on this labeling too.
    assert!(report.star_total_at_endpoints >= report.star_lower_bound);
}
