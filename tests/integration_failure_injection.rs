//! Failure injection: every verifier in the workspace must *catch* the
//! corruption we inject, not just pass on good data. A verifier that never
//! fails is worthless.

use hub_labeling::graph::rng::Xorshift64;

use hub_labeling::core::cover::{verify_exact, verify_hub_distances};
use hub_labeling::core::label::{HubLabel, HubLabeling};
use hub_labeling::core::pll::PrunedLandmarkLabeling;
use hub_labeling::graph::{generators, NodeId};
use hub_labeling::lowerbound::accounting::audit_h;
use hub_labeling::lowerbound::{GadgetParams, HGraph};
use hub_labeling::rs::induced::{is_induced_matching, is_induced_matching_partition};
use hub_labeling::rs::RsGraph;

/// Returns a copy of `labeling` with one hub distance perturbed.
fn corrupt_distance(labeling: &HubLabeling, seed: u64) -> (HubLabeling, NodeId) {
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut labels: Vec<HubLabel> = (0..labeling.num_nodes() as NodeId)
        .map(|v| labeling.label(v).clone())
        .collect();
    loop {
        let v = rng.gen_index(labels.len());
        if labels[v].is_empty() {
            continue;
        }
        let k = rng.gen_index(labels[v].len());
        let pairs: Vec<(NodeId, u64)> = labels[v]
            .iter()
            .enumerate()
            .map(|(i, (h, d))| {
                if i == k {
                    (h, d + 1 + rng.gen_u64_below(5))
                } else {
                    (h, d)
                }
            })
            .collect();
        labels[v] = HubLabel::from_pairs(pairs);
        return (HubLabeling::from_labels(labels), v as NodeId);
    }
}

/// Returns a copy with one entire label emptied.
fn drop_label(labeling: &HubLabeling, victim: NodeId) -> HubLabeling {
    let labels: Vec<HubLabel> = (0..labeling.num_nodes() as NodeId)
        .map(|v| {
            if v == victim {
                HubLabel::new()
            } else {
                labeling.label(v).clone()
            }
        })
        .collect();
    HubLabeling::from_labels(labels)
}

#[test]
fn verifier_catches_perturbed_distances() {
    let g = generators::connected_gnm(50, 25, 7);
    let good = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    assert!(verify_exact(&g, &good).unwrap().is_exact());
    for seed in 0..8 {
        let (bad, v) = corrupt_distance(&good, seed);
        let hub_check = verify_hub_distances(&g, &bad, &[v]);
        let cover_check = verify_exact(&g, &bad).unwrap();
        assert!(
            !hub_check || !cover_check.is_exact(),
            "seed {seed}: corruption at vertex {v} went undetected"
        );
    }
}

#[test]
fn verifier_catches_dropped_labels() {
    let g = generators::grid(6, 6);
    let good = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    for victim in [0u32, 17, 35] {
        let bad = drop_label(&good, victim);
        let report = verify_exact(&g, &bad).unwrap();
        assert!(
            !report.is_exact(),
            "dropping label {victim} must break the cover"
        );
        // Every violation involves the victim.
        assert!(report
            .violations
            .iter()
            .all(|&(u, v, _, _)| u == victim || v == victim));
    }
}

#[test]
fn audit_catches_uncovering_of_midpoints() {
    // Strip all middle-layer hubs from the labeling of H(2,1): the triple
    // audit must notice at least one uncharged triple.
    let p = GadgetParams::new(2, 1).unwrap();
    let h = HGraph::build(p);
    let good = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
    assert!(audit_h(&h, &good).all_charged());
    let level_size = p.level_size();
    let labels: Vec<HubLabel> = (0..good.num_nodes() as NodeId)
        .map(|v| {
            let pairs: Vec<(NodeId, u64)> = good
                .label(v)
                .iter()
                .filter(|&(hub, _)| {
                    let level = hub as u64 / level_size;
                    level != 1 // strip level-ℓ hubs (ℓ = 1)
                })
                .collect();
            HubLabel::from_pairs(pairs)
        })
        .collect();
    let stripped = HubLabeling::from_labels(labels);
    let report = audit_h(&h, &stripped);
    assert!(
        !report.all_charged(),
        "removing all middle hubs must leave triples uncharged: {report:?}"
    );
}

#[test]
fn induced_checker_catches_planted_cross_edges() {
    // Take a valid RS graph and plant a cross edge inside one matching:
    // the partition check must fail.
    let rs = RsGraph::behrend(150);
    assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
    let m0 = &rs.matchings()[0];
    if m0.len() >= 2 {
        let mut builder = hub_labeling::graph::GraphBuilder::new(rs.graph().num_nodes());
        for (u, v, w) in rs.graph().edges() {
            builder.add_edge(u, v, w).unwrap();
        }
        // Cross edge between the first two matching edges.
        builder.add_edge(m0[0].0, m0[1].1, 1).unwrap();
        let sabotaged = builder.build();
        assert!(
            !is_induced_matching(&sabotaged, m0),
            "planted cross edge must break inducedness"
        );
    }
}

#[test]
fn graph_io_rejects_truncation() {
    let g = generators::connected_gnm(20, 10, 1);
    let text = hub_labeling::graph::io::to_string(&g);
    // Drop the last line: edge count mismatch must be detected.
    let truncated: String = {
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        lines.join("\n")
    };
    assert!(hub_labeling::graph::io::from_str(&truncated).is_err());
}

#[test]
fn labeling_io_rejects_truncation() {
    let g = generators::path(10);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let text = hub_labeling::core::io::to_string(&hl);
    let truncated: String = {
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        lines.join("\n")
    };
    assert!(hub_labeling::core::io::from_str(&truncated).is_err());
}

#[test]
fn protocol_referee_detects_wrong_word_on_one_side() {
    // If Alice and Bob disagree on S (protocol violation), answers break
    // for at least one input pair — the setup is genuinely word-dependent.
    use hub_labeling::sumindex::protocol::GraphProtocol;
    use hub_labeling::sumindex::repr::Repr;
    use hub_labeling::sumindex::SumIndexInstance;
    // ℓ = 3 so the word actually shapes Bob-side distances; at ℓ = 2 the
    // gadget is too shallow for a swapped Bob label to corrupt anything.
    let params = GadgetParams::new(2, 3).unwrap();
    let m = Repr::new(params).modulus() as usize;
    // Complementary words: every bit differs, so the two worlds disagree
    // regardless of which positions a random draw would have flipped.
    let word_a = SumIndexInstance::new(vec![false; m]);
    let word_b = SumIndexInstance::new(vec![true; m]);
    assert_ne!(word_a, word_b);
    let proto_a = GraphProtocol::new(params, &word_a).unwrap();
    let proto_b = GraphProtocol::new(params, &word_b).unwrap();
    let mut mismatch = false;
    for a in 0..m as u64 {
        for b in 0..m as u64 {
            // Alice from world A, Bob from world B.
            let answer = proto_a.referee(&proto_a.alice_message(a), &proto_b.bob_message(b));
            mismatch |= answer != word_a.answer(a as usize, b as usize);
        }
    }
    assert!(mismatch, "cross-world messages should corrupt some answer");
}
